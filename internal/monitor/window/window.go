// Package window assembles the per-server vectors of §III-C: for each time
// window and each storage target, the concatenation of the target
// application's client-side metrics toward that target with the target's
// server-side metrics. The resulting [targets × features] matrix per window
// is the input format of the kernel-based model.
package window

import (
	"quanterference/internal/monitor/clientmon"
	"quanterference/internal/monitor/servermon"
)

// NumFeatures is the per-target vector length.
var NumFeatures = clientmon.NumFeatures + servermon.NumFeatures

// FeatureNames labels the combined vector entries.
func FeatureNames() []string {
	return append(clientmon.FeatureNames(), servermon.FeatureNames()...)
}

// Matrix is one window's per-server vectors: [target][feature].
type Matrix [][]float64

// Assemble joins one window's client metrics and server vectors. Either side
// may be nil (no client I/O, or monitor not yet finalized): missing parts
// are zero-filled so the matrix shape stays fixed.
func Assemble(nTargets int, client []clientmon.TargetMetrics, server [][]float64) Matrix {
	m := make(Matrix, nTargets)
	for t := 0; t < nTargets; t++ {
		vec := make([]float64, 0, NumFeatures)
		if client != nil {
			vec = append(vec, client[t].Vector()...)
		} else {
			vec = append(vec, make([]float64, clientmon.NumFeatures)...)
		}
		if server != nil {
			vec = append(vec, server[t]...)
		} else {
			vec = append(vec, make([]float64, servermon.NumFeatures)...)
		}
		m[t] = vec
	}
	return m
}

// Collect builds matrices for every window where the client monitor saw I/O,
// pairing it with the same window's server vectors.
func Collect(nTargets int, cm *clientmon.Monitor, sm *servermon.Monitor) map[int]Matrix {
	out := make(map[int]Matrix)
	for _, idx := range cm.Windows() {
		cw, _ := cm.Window(idx)
		sw, _ := sm.Window(idx)
		out[idx] = Assemble(nTargets, cw, sw)
	}
	return out
}
