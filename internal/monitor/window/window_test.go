package window

import (
	"testing"

	"quanterference/internal/lustre"
	"quanterference/internal/monitor/clientmon"
	"quanterference/internal/monitor/servermon"
	"quanterference/internal/netsim"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
	"quanterference/internal/workload/io500"
)

func TestFeatureNamesMatchWidth(t *testing.T) {
	if len(FeatureNames()) != NumFeatures {
		t.Fatalf("names=%d width=%d", len(FeatureNames()), NumFeatures)
	}
	if NumFeatures != clientmon.NumFeatures+servermon.NumFeatures {
		t.Fatal("width mismatch")
	}
}

func TestAssembleZeroFills(t *testing.T) {
	m := Assemble(3, nil, nil)
	if len(m) != 3 {
		t.Fatalf("targets=%d", len(m))
	}
	for _, vec := range m {
		if len(vec) != NumFeatures {
			t.Fatalf("vector len %d", len(vec))
		}
		for _, x := range vec {
			if x != 0 {
				t.Fatal("zero-fill violated")
			}
		}
	}
}

func TestAssembleOrdersClientThenServer(t *testing.T) {
	client := make([]clientmon.TargetMetrics, 2)
	client[1].Reads = 7
	server := [][]float64{make([]float64, servermon.NumFeatures), make([]float64, servermon.NumFeatures)}
	server[1][0] = 9
	m := Assemble(2, client, server)
	if m[1][0] != 7 {
		t.Fatalf("client features first: %v", m[1][:3])
	}
	if m[1][clientmon.NumFeatures] != 9 {
		t.Fatalf("server features after client: %v", m[1][clientmon.NumFeatures:clientmon.NumFeatures+3])
	}
}

func TestCollectEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	fs := lustre.New(eng, net, lustre.PaperTopology(), lustre.Config{})
	cm := clientmon.New(fs.NumTargets(), sim.Second)
	sm := servermon.New(fs, sim.Second)
	g := io500.New(io500.IorEasyWrite, io500.Params{Ranks: 2, EasyFileBytes: 8 << 20})
	r := &workload.Runner{
		FS: fs, Name: "w", Nodes: []string{"c0"}, Ranks: 2, Gen: g,
		OnRecord: cm.Record,
	}
	r.Start()
	eng.RunUntil(sim.Seconds(10))
	mats := Collect(fs.NumTargets(), cm, sm)
	if len(mats) == 0 {
		t.Fatal("no windows collected")
	}
	for idx, mat := range mats {
		if len(mat) != fs.NumTargets() {
			t.Fatalf("window %d has %d targets", idx, len(mat))
		}
		for _, vec := range mat {
			if len(vec) != NumFeatures {
				t.Fatalf("window %d vector len %d", idx, len(vec))
			}
		}
	}
	// The write activity must be visible in both halves of some vector.
	foundClient, foundServer := false, false
	for _, mat := range mats {
		for _, vec := range mat {
			if vec[1] > 0 { // cli_writes
				foundClient = true
			}
			for _, x := range vec[clientmon.NumFeatures:] {
				if x > 0 {
					foundServer = true
				}
			}
		}
	}
	if !foundClient || !foundServer {
		t.Fatalf("activity missing: client=%v server=%v", foundClient, foundServer)
	}
}
