package ml

import (
	"path/filepath"
	"testing"

	"quanterference/internal/nn"
)

func modelsUnderTest() map[string]Model {
	return map[string]Model{
		"kernel":    NewKernelModel(KernelConfig{NTargets: 3, NFeat: 5, Classes: 2, Seed: 1}),
		"flat":      NewFlatModel(3, 5, 2, nil, 1),
		"attention": NewAttentionModel(AttentionConfig{NTargets: 3, NFeat: 5, Classes: 2, Seed: 1}),
	}
}

func TestSaveLoadEveryKind(t *testing.T) {
	vectors := [][]float64{{1, 0, -1, 2, 0.5}, {0, 1, 1, -2, 0}, {2, 2, 0, 0, 1}}
	dir := t.TempDir()
	for kind, m := range modelsUnderTest() {
		// Train a step so weights differ from initialization.
		m.LossAndGrad(vectors, 1, 1)
		for _, p := range m.Params() {
			for j := range p.W {
				p.W[j] += 0.01 * p.G[j]
				p.G[j] = 0
			}
		}
		wantProbs := m.Probs(vectors)
		path := filepath.Join(dir, kind+".json")
		if err := SaveModel(m, path); err != nil {
			t.Fatalf("%s: save: %v", kind, err)
		}
		got, err := LoadModel(path)
		if err != nil {
			t.Fatalf("%s: load: %v", kind, err)
		}
		gotProbs := got.Probs(vectors)
		for i := range wantProbs {
			if gotProbs[i] != wantProbs[i] {
				t.Fatalf("%s: probs differ after round trip: %v vs %v",
					kind, gotProbs, wantProbs)
			}
		}
		spec, _ := Snapshot(got)
		if spec.Kind != kind {
			t.Fatalf("kind %q round-tripped as %q", kind, spec.Kind)
		}
	}
}

func TestRestoreRejectsShapeMismatch(t *testing.T) {
	m := NewKernelModel(KernelConfig{NTargets: 2, NFeat: 3, Classes: 2, Seed: 1})
	spec, err := Snapshot(m)
	if err != nil {
		t.Fatal(err)
	}
	spec.Weights[0] = spec.Weights[0][:1]
	if _, err := Restore(spec); err == nil {
		t.Fatal("expected shape mismatch error")
	}
	spec2, _ := Snapshot(m)
	spec2.Kind = "bogus"
	if _, err := Restore(spec2); err == nil {
		t.Fatal("expected unknown-kind error")
	}
}

func TestSnapshotRejectsForeignModel(t *testing.T) {
	if _, err := Snapshot(fakeModel{}); err == nil {
		t.Fatal("expected error")
	}
}

type fakeModel struct{}

func (fakeModel) Predict([][]float64) int                       { return 0 }
func (fakeModel) Probs([][]float64) []float64                   { return nil }
func (fakeModel) LossAndGrad([][]float64, int, float64) float64 { return 0 }
func (fakeModel) Params() []nn.Param                            { return nil }
