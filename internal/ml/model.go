// Package ml implements the paper's kernel-based classification model
// (§III-C): a shared dense network applied independently to each per-server
// vector, whose scalar outputs are concatenated and fed to a small MLP head
// for multi-bin classification. It also provides a flat-MLP baseline (for
// the architecture ablation), an attention extension, the training loop
// (serial, or data-parallel with deterministic gradient reduction), and
// evaluation metrics (confusion matrices, precision/recall/F1).
package ml

import (
	"fmt"

	"quanterference/internal/nn"
	"quanterference/internal/sim"
)

// Model is a classifier over per-server vector matrices.
type Model interface {
	// Predict returns the argmax class for one window's matrix.
	Predict(vectors [][]float64) int
	// Probs returns the class distribution.
	Probs(vectors [][]float64) []float64
	// LossAndGrad accumulates parameter gradients for one sample and
	// returns its weighted loss.
	LossAndGrad(vectors [][]float64, label int, weight float64) float64
	// Params exposes the trainable parameters.
	Params() []nn.Param
}

// BatchPredictor is a Model with an allocation-free inference path for the
// serving hot loop: ProbsInto writes one window's class distribution into
// dst without touching the training caches, producing bits identical to
// Probs. KernelModel and FlatModel implement it via nn's Infer path;
// Framework.PredictBatch falls back to Probs for models that do not.
type BatchPredictor interface {
	Model
	// ProbsInto writes the class distribution for vectors into dst (length
	// must equal the class count) and returns dst.
	ProbsInto(dst []float64, vectors [][]float64) []float64
}

// Dims reports a model's input/output shape — what a serving layer needs to
// validate requests before they reach the model's panicking check. ok is
// false for model types this package does not know.
func Dims(m Model) (nTargets, nFeat, classes int, ok bool) {
	switch t := m.(type) {
	case *KernelModel:
		return t.nTargets, t.nFeat, t.classes, true
	case *FlatModel:
		return t.nTargets, t.nFeat, t.classes, true
	case *AttentionModel:
		return t.nTargets, t.nFeat, t.classes, true
	}
	return 0, 0, 0, false
}

// Replicable is a Model that can produce weight-sharing replicas for
// data-parallel training (TrainConfig.Workers): a replica shares the
// original's weight slices but owns private gradient accumulators and
// scratch state, so replicas may run LossAndGrad concurrently as long as
// weights are only updated between batches. All models in this package
// implement it.
type Replicable interface {
	Model
	// Replica returns a weight-sharing replica; see the interface comment.
	Replica() Model
}

// KernelModel is the paper's architecture. Because the kernel network's
// weights are shared across servers, the model generalizes over which
// subset of OSTs a file actually uses — the motivation given in §III-C.
type KernelModel struct {
	Kernel *nn.Sequential // per-server vector -> 1 scalar
	Head   *nn.Sequential // nTargets scalars -> class logits

	nTargets int
	nFeat    int
	classes  int

	// Reusable per-model scratch; replicas get their own, keeping the
	// training and inference hot loops allocation-free.
	z          []float64  // kernel outputs / head input
	zeroLogits []float64  // all-zero dlogits for cache drains
	dzt        [1]float64 // per-target backward seed
	probsBuf   []float64  // Predict's softmax output
	ce         nn.CEScratch
	params     []nn.Param // cached Params() slice
}

// KernelConfig sizes the model.
type KernelConfig struct {
	NTargets int
	NFeat    int
	Classes  int
	// KernelHidden are the shared network's hidden sizes (default 32,16).
	KernelHidden []int
	// HeadHidden are the head's hidden sizes (default 16).
	HeadHidden []int
	Seed       int64
}

// NewKernelModel builds the model with He initialization.
func NewKernelModel(cfg KernelConfig) *KernelModel {
	if cfg.NTargets <= 0 || cfg.NFeat <= 0 || cfg.Classes < 2 {
		panic("ml: bad kernel model config")
	}
	if cfg.KernelHidden == nil {
		cfg.KernelHidden = []int{32, 16}
	}
	if cfg.HeadHidden == nil {
		cfg.HeadHidden = []int{16}
	}
	rng := sim.NewRNG(cfg.Seed ^ 0x4b4e)
	kSizes := append([]int{cfg.NFeat}, cfg.KernelHidden...)
	kSizes = append(kSizes, 1)
	hSizes := append([]int{cfg.NTargets}, cfg.HeadHidden...)
	hSizes = append(hSizes, cfg.Classes)
	return newKernelModel(nn.MLP(rng, kSizes...), nn.MLP(rng, hSizes...),
		cfg.NTargets, cfg.NFeat, cfg.Classes)
}

func newKernelModel(kernel, head *nn.Sequential, nTargets, nFeat, classes int) *KernelModel {
	m := &KernelModel{
		Kernel:   kernel,
		Head:     head,
		nTargets: nTargets,
		nFeat:    nFeat,
		classes:  classes,
		z:        make([]float64, nTargets),
		// zeroLogits stays all-zero: layers only read their dy argument.
		zeroLogits: make([]float64, classes),
		probsBuf:   make([]float64, classes),
	}
	m.params = append(m.Kernel.Params(), m.Head.Params()...)
	return m
}

// Replica implements Replicable.
func (m *KernelModel) Replica() Model {
	return newKernelModel(m.Kernel.Replica(), m.Head.Replica(),
		m.nTargets, m.nFeat, m.classes)
}

func (m *KernelModel) check(vectors [][]float64) {
	if len(vectors) != m.nTargets {
		panic(fmt.Sprintf("ml: %d vectors, want %d", len(vectors), m.nTargets))
	}
}

// forward runs kernel-per-target then head, leaving caches in place.
func (m *KernelModel) forward(vectors [][]float64) []float64 {
	m.check(vectors)
	for t, v := range vectors {
		m.z[t] = m.Kernel.Forward(v)[0]
	}
	return m.Head.Forward(m.z)
}

// drain pops all forward caches after an inference-only pass.
func (m *KernelModel) drain() {
	m.Head.BackwardNoDX(m.zeroLogits)
	m.dzt[0] = 0
	for t := 0; t < m.nTargets; t++ {
		m.Kernel.BackwardNoDX(m.dzt[:])
	}
	nn.ZeroGrads(m.params)
}

// Probs implements Model. The returned slice is freshly allocated.
func (m *KernelModel) Probs(vectors [][]float64) []float64 {
	logits := m.forward(vectors)
	m.drain()
	return nn.Softmax(logits)
}

// Predict implements Model. Unlike Probs it allocates nothing, so it is the
// entry point for the online predictor's per-window hot path.
func (m *KernelModel) Predict(vectors [][]float64) int {
	logits := m.forward(vectors)
	m.drain()
	return argmax(nn.SoftmaxInto(m.probsBuf, logits))
}

// ProbsInto implements BatchPredictor on nn's Infer path: no caches are
// pushed, so no drain pass is needed — about half the work of Probs for the
// same bits.
func (m *KernelModel) ProbsInto(dst []float64, vectors [][]float64) []float64 {
	m.check(vectors)
	for t, v := range vectors {
		m.z[t] = m.Kernel.Infer(v)[0]
	}
	return nn.SoftmaxInto(dst, m.Head.Infer(m.z))
}

// LossAndGrad implements Model.
func (m *KernelModel) LossAndGrad(vectors [][]float64, label int, weight float64) float64 {
	logits := m.forward(vectors)
	loss, dlogits := m.ce.SoftmaxCE(logits, label, weight)
	dz := m.Head.Backward(dlogits)
	// Kernel caches are a stack: backprop targets in reverse order. The
	// kernel's own input gradient is never used, so skip computing it.
	for t := m.nTargets - 1; t >= 0; t-- {
		m.dzt[0] = dz[t]
		m.Kernel.BackwardNoDX(m.dzt[:])
	}
	return loss
}

// Params implements Model.
func (m *KernelModel) Params() []nn.Param { return m.params }

// FlatModel is the ablation baseline: one MLP over the concatenation of all
// per-server vectors, with no weight sharing across servers.
type FlatModel struct {
	Net      *nn.Sequential
	nTargets int
	nFeat    int
	classes  int

	flat       []float64 // flatten scratch
	zeroLogits []float64
	probsBuf   []float64
	ce         nn.CEScratch
	params     []nn.Param
}

// NewFlatModel builds the baseline with a comparable parameter budget.
func NewFlatModel(nTargets, nFeat, classes int, hidden []int, seed int64) *FlatModel {
	if hidden == nil {
		hidden = []int{64, 16}
	}
	rng := sim.NewRNG(seed ^ 0xf1a7)
	sizes := append([]int{nTargets * nFeat}, hidden...)
	sizes = append(sizes, classes)
	return newFlatModel(nn.MLP(rng, sizes...), nTargets, nFeat, classes)
}

func newFlatModel(net *nn.Sequential, nTargets, nFeat, classes int) *FlatModel {
	m := &FlatModel{
		Net:      net,
		nTargets: nTargets, nFeat: nFeat, classes: classes,
		flat:       make([]float64, 0, nTargets*nFeat),
		zeroLogits: make([]float64, classes),
		probsBuf:   make([]float64, classes),
	}
	m.params = m.Net.Params()
	return m
}

// Replica implements Replicable.
func (m *FlatModel) Replica() Model {
	return newFlatModel(m.Net.Replica(), m.nTargets, m.nFeat, m.classes)
}

func (m *FlatModel) flatten(vectors [][]float64) []float64 {
	x := m.flat[:0]
	for _, v := range vectors {
		x = append(x, v...)
	}
	m.flat = x
	return x
}

// Probs implements Model. The returned slice is freshly allocated.
func (m *FlatModel) Probs(vectors [][]float64) []float64 {
	logits := m.Net.Forward(m.flatten(vectors))
	m.Net.BackwardNoDX(m.zeroLogits)
	nn.ZeroGrads(m.params)
	return nn.Softmax(logits)
}

// Predict implements Model; allocation-free like KernelModel.Predict.
func (m *FlatModel) Predict(vectors [][]float64) int {
	logits := m.Net.Forward(m.flatten(vectors))
	m.Net.BackwardNoDX(m.zeroLogits)
	nn.ZeroGrads(m.params)
	return argmax(nn.SoftmaxInto(m.probsBuf, logits))
}

// ProbsInto implements BatchPredictor; see KernelModel.ProbsInto.
func (m *FlatModel) ProbsInto(dst []float64, vectors [][]float64) []float64 {
	return nn.SoftmaxInto(dst, m.Net.Infer(m.flatten(vectors)))
}

// LossAndGrad implements Model.
func (m *FlatModel) LossAndGrad(vectors [][]float64, label int, weight float64) float64 {
	logits := m.Net.Forward(m.flatten(vectors))
	loss, dlogits := m.ce.SoftmaxCE(logits, label, weight)
	m.Net.BackwardNoDX(dlogits)
	return loss
}

// Params implements Model.
func (m *FlatModel) Params() []nn.Param { return m.params }

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

var _ Replicable = (*KernelModel)(nil)
var _ Replicable = (*FlatModel)(nil)
var _ BatchPredictor = (*KernelModel)(nil)
var _ BatchPredictor = (*FlatModel)(nil)
