// Package ml implements the paper's kernel-based classification model
// (§III-C): a shared dense network applied independently to each per-server
// vector, whose scalar outputs are concatenated and fed to a small MLP head
// for multi-bin classification. It also provides a flat-MLP baseline (for
// the architecture ablation), the training loop, and evaluation metrics
// (confusion matrices, precision/recall/F1).
package ml

import (
	"fmt"

	"quanterference/internal/nn"
	"quanterference/internal/sim"
)

// Model is a classifier over per-server vector matrices.
type Model interface {
	// Predict returns the argmax class for one window's matrix.
	Predict(vectors [][]float64) int
	// Probs returns the class distribution.
	Probs(vectors [][]float64) []float64
	// LossAndGrad accumulates parameter gradients for one sample and
	// returns its weighted loss.
	LossAndGrad(vectors [][]float64, label int, weight float64) float64
	// Params exposes the trainable parameters.
	Params() []nn.Param
}

// KernelModel is the paper's architecture. Because the kernel network's
// weights are shared across servers, the model generalizes over which
// subset of OSTs a file actually uses — the motivation given in §III-C.
type KernelModel struct {
	Kernel *nn.Sequential // per-server vector -> 1 scalar
	Head   *nn.Sequential // nTargets scalars -> class logits

	nTargets int
	nFeat    int
	classes  int
}

// KernelConfig sizes the model.
type KernelConfig struct {
	NTargets int
	NFeat    int
	Classes  int
	// KernelHidden are the shared network's hidden sizes (default 32,16).
	KernelHidden []int
	// HeadHidden are the head's hidden sizes (default 16).
	HeadHidden []int
	Seed       int64
}

// NewKernelModel builds the model with He initialization.
func NewKernelModel(cfg KernelConfig) *KernelModel {
	if cfg.NTargets <= 0 || cfg.NFeat <= 0 || cfg.Classes < 2 {
		panic("ml: bad kernel model config")
	}
	if cfg.KernelHidden == nil {
		cfg.KernelHidden = []int{32, 16}
	}
	if cfg.HeadHidden == nil {
		cfg.HeadHidden = []int{16}
	}
	rng := sim.NewRNG(cfg.Seed ^ 0x4b4e)
	kSizes := append([]int{cfg.NFeat}, cfg.KernelHidden...)
	kSizes = append(kSizes, 1)
	hSizes := append([]int{cfg.NTargets}, cfg.HeadHidden...)
	hSizes = append(hSizes, cfg.Classes)
	return &KernelModel{
		Kernel:   nn.MLP(rng, kSizes...),
		Head:     nn.MLP(rng, hSizes...),
		nTargets: cfg.NTargets,
		nFeat:    cfg.NFeat,
		classes:  cfg.Classes,
	}
}

func (m *KernelModel) check(vectors [][]float64) {
	if len(vectors) != m.nTargets {
		panic(fmt.Sprintf("ml: %d vectors, want %d", len(vectors), m.nTargets))
	}
}

// forward runs kernel-per-target then head, leaving caches in place.
func (m *KernelModel) forward(vectors [][]float64) []float64 {
	m.check(vectors)
	z := make([]float64, m.nTargets)
	for t, v := range vectors {
		z[t] = m.Kernel.Forward(v)[0]
	}
	return m.Head.Forward(z)
}

// drain pops all forward caches after an inference-only pass.
func (m *KernelModel) drain() {
	m.Head.Backward(make([]float64, m.classes))
	for t := 0; t < m.nTargets; t++ {
		m.Kernel.Backward([]float64{0})
	}
	nn.ZeroGrads(m.Params())
}

// Probs implements Model.
func (m *KernelModel) Probs(vectors [][]float64) []float64 {
	logits := m.forward(vectors)
	m.drain()
	return nn.Softmax(logits)
}

// Predict implements Model.
func (m *KernelModel) Predict(vectors [][]float64) int {
	return argmax(m.Probs(vectors))
}

// LossAndGrad implements Model.
func (m *KernelModel) LossAndGrad(vectors [][]float64, label int, weight float64) float64 {
	logits := m.forward(vectors)
	loss, dlogits := nn.SoftmaxCE(logits, label, weight)
	dz := m.Head.Backward(dlogits)
	// Kernel caches are a stack: backprop targets in reverse order.
	for t := m.nTargets - 1; t >= 0; t-- {
		m.Kernel.Backward([]float64{dz[t]})
	}
	return loss
}

// Params implements Model.
func (m *KernelModel) Params() []nn.Param {
	return append(m.Kernel.Params(), m.Head.Params()...)
}

// FlatModel is the ablation baseline: one MLP over the concatenation of all
// per-server vectors, with no weight sharing across servers.
type FlatModel struct {
	Net      *nn.Sequential
	nTargets int
	nFeat    int
	classes  int
}

// NewFlatModel builds the baseline with a comparable parameter budget.
func NewFlatModel(nTargets, nFeat, classes int, hidden []int, seed int64) *FlatModel {
	if hidden == nil {
		hidden = []int{64, 16}
	}
	rng := sim.NewRNG(seed ^ 0xf1a7)
	sizes := append([]int{nTargets * nFeat}, hidden...)
	sizes = append(sizes, classes)
	return &FlatModel{
		Net:      nn.MLP(rng, sizes...),
		nTargets: nTargets, nFeat: nFeat, classes: classes,
	}
}

func (m *FlatModel) flatten(vectors [][]float64) []float64 {
	x := make([]float64, 0, m.nTargets*m.nFeat)
	for _, v := range vectors {
		x = append(x, v...)
	}
	return x
}

// Probs implements Model.
func (m *FlatModel) Probs(vectors [][]float64) []float64 {
	logits := m.Net.Forward(m.flatten(vectors))
	m.Net.Backward(make([]float64, m.classes))
	nn.ZeroGrads(m.Net.Params())
	return nn.Softmax(logits)
}

// Predict implements Model.
func (m *FlatModel) Predict(vectors [][]float64) int { return argmax(m.Probs(vectors)) }

// LossAndGrad implements Model.
func (m *FlatModel) LossAndGrad(vectors [][]float64, label int, weight float64) float64 {
	logits := m.Net.Forward(m.flatten(vectors))
	loss, dlogits := nn.SoftmaxCE(logits, label, weight)
	m.Net.Backward(dlogits)
	return loss
}

// Params implements Model.
func (m *FlatModel) Params() []nn.Param { return m.Net.Params() }

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

var _ Model = (*KernelModel)(nil)
var _ Model = (*FlatModel)(nil)
