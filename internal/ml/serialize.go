package ml

import (
	"encoding/json"
	"fmt"
	"os"

	"quanterference/internal/nn"
)

// ModelSpec is the serialized form of a trained classifier: enough to
// reconstruct the architecture and restore its weights.
type ModelSpec struct {
	Kind     string      `json:"kind"` // kernel, flat, attention
	NTargets int         `json:"n_targets"`
	NFeat    int         `json:"n_feat"`
	Classes  int         `json:"classes"`
	Seed     int64       `json:"seed"`
	Weights  [][]float64 `json:"weights"`
}

// ExportWeights snapshots every parameter tensor of a model, in Params
// order, into freshly allocated slices — the bit-exact weight state, suitable
// for equality comparison across runs (the determinism tests) or for feeding
// back through ImportWeights.
func ExportWeights(m Model) [][]float64 { return nn.SnapshotParams(m.Params()) }

// ImportWeights restores an ExportWeights snapshot into a model with the
// same architecture. Shapes must match exactly; a failed import leaves the
// model untouched.
func ImportWeights(m Model, weights [][]float64) error {
	return nn.RestoreParams(m.Params(), weights)
}

// CloneModel builds an independent copy of a model: same architecture, same
// weights, private gradient state and scratch. Unlike Replica (which shares
// weight storage for data-parallel training), a clone may be trained or used
// for inference without affecting the original — the primitive behind
// warm-started retraining, where a candidate starts from the incumbent's
// weights but must not perturb the incumbent while it keeps serving.
func CloneModel(m Model) (Model, error) {
	spec, err := Snapshot(m)
	if err != nil {
		return nil, err
	}
	return Restore(spec)
}

// Snapshot captures a model's architecture and weights. The model must be
// one of this package's concrete types.
func Snapshot(m Model) (*ModelSpec, error) {
	spec := &ModelSpec{Weights: nn.SnapshotParams(m.Params())}
	switch t := m.(type) {
	case *KernelModel:
		spec.Kind = "kernel"
		spec.NTargets, spec.NFeat, spec.Classes = t.nTargets, t.nFeat, t.classes
	case *FlatModel:
		spec.Kind = "flat"
		spec.NTargets, spec.NFeat, spec.Classes = t.nTargets, t.nFeat, t.classes
	case *AttentionModel:
		spec.Kind = "attention"
		spec.NTargets, spec.NFeat, spec.Classes = t.nTargets, t.nFeat, t.classes
	default:
		return nil, fmt.Errorf("ml: cannot snapshot %T", m)
	}
	return spec, nil
}

// Restore rebuilds the model a Snapshot described.
func Restore(spec *ModelSpec) (Model, error) {
	var m Model
	switch spec.Kind {
	case "kernel":
		m = NewKernelModel(KernelConfig{
			NTargets: spec.NTargets, NFeat: spec.NFeat, Classes: spec.Classes, Seed: spec.Seed,
		})
	case "flat":
		m = NewFlatModel(spec.NTargets, spec.NFeat, spec.Classes, nil, spec.Seed)
	case "attention":
		m = NewAttentionModel(AttentionConfig{
			NTargets: spec.NTargets, NFeat: spec.NFeat, Classes: spec.Classes, Seed: spec.Seed,
		})
	default:
		return nil, fmt.Errorf("ml: unknown model kind %q", spec.Kind)
	}
	if err := nn.RestoreParams(m.Params(), spec.Weights); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveModel writes a model snapshot as JSON.
func SaveModel(m Model, path string) error {
	spec, err := Snapshot(m)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewEncoder(f).Encode(spec)
}

// LoadModel reads a snapshot written by SaveModel.
func LoadModel(path string) (Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var spec ModelSpec
	if err := json.NewDecoder(f).Decode(&spec); err != nil {
		return nil, err
	}
	return Restore(&spec)
}
