package ml

import (
	"encoding/json"
	"fmt"
	"os"

	"quanterference/internal/nn"
)

// ModelSpec is the serialized form of a trained classifier: enough to
// reconstruct the architecture and restore its weights.
type ModelSpec struct {
	Kind     string      `json:"kind"` // kernel, flat, attention
	NTargets int         `json:"n_targets"`
	NFeat    int         `json:"n_feat"`
	Classes  int         `json:"classes"`
	Seed     int64       `json:"seed"`
	Weights  [][]float64 `json:"weights"`
}

// exportWeights snapshots every parameter tensor in Params order.
func exportWeights(params []nn.Param) [][]float64 {
	out := make([][]float64, len(params))
	for i, p := range params {
		out[i] = append([]float64(nil), p.W...)
	}
	return out
}

// importWeights restores a snapshot; shapes must match exactly.
func importWeights(params []nn.Param, weights [][]float64) error {
	if len(params) != len(weights) {
		return fmt.Errorf("ml: weight count %d, model has %d tensors", len(weights), len(params))
	}
	for i, p := range params {
		if len(p.W) != len(weights[i]) {
			return fmt.Errorf("ml: tensor %d has %d weights, snapshot has %d",
				i, len(p.W), len(weights[i]))
		}
		copy(p.W, weights[i])
	}
	return nil
}

// Snapshot captures a model's architecture and weights. The model must be
// one of this package's concrete types.
func Snapshot(m Model) (*ModelSpec, error) {
	spec := &ModelSpec{Weights: exportWeights(m.Params())}
	switch t := m.(type) {
	case *KernelModel:
		spec.Kind = "kernel"
		spec.NTargets, spec.NFeat, spec.Classes = t.nTargets, t.nFeat, t.classes
	case *FlatModel:
		spec.Kind = "flat"
		spec.NTargets, spec.NFeat, spec.Classes = t.nTargets, t.nFeat, t.classes
	case *AttentionModel:
		spec.Kind = "attention"
		spec.NTargets, spec.NFeat, spec.Classes = t.nTargets, t.nFeat, t.classes
	default:
		return nil, fmt.Errorf("ml: cannot snapshot %T", m)
	}
	return spec, nil
}

// Restore rebuilds the model a Snapshot described.
func Restore(spec *ModelSpec) (Model, error) {
	var m Model
	switch spec.Kind {
	case "kernel":
		m = NewKernelModel(KernelConfig{
			NTargets: spec.NTargets, NFeat: spec.NFeat, Classes: spec.Classes, Seed: spec.Seed,
		})
	case "flat":
		m = NewFlatModel(spec.NTargets, spec.NFeat, spec.Classes, nil, spec.Seed)
	case "attention":
		m = NewAttentionModel(AttentionConfig{
			NTargets: spec.NTargets, NFeat: spec.NFeat, Classes: spec.Classes, Seed: spec.Seed,
		})
	default:
		return nil, fmt.Errorf("ml: unknown model kind %q", spec.Kind)
	}
	if err := importWeights(m.Params(), spec.Weights); err != nil {
		return nil, err
	}
	return m, nil
}

// SaveModel writes a model snapshot as JSON.
func SaveModel(m Model, path string) error {
	spec, err := Snapshot(m)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return json.NewEncoder(f).Encode(spec)
}

// LoadModel reads a snapshot written by SaveModel.
func LoadModel(path string) (Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var spec ModelSpec
	if err := json.NewDecoder(f).Decode(&spec); err != nil {
		return nil, err
	}
	return Restore(&spec)
}
