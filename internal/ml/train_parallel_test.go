package ml

import (
	"math"
	"testing"

	"quanterference/internal/dataset"
	"quanterference/internal/nn"
	"quanterference/internal/sim"
)

func parallelTestDataset(n, nTargets, nFeat, classes int) *dataset.Dataset {
	names := make([]string, nFeat)
	for i := range names {
		names[i] = "f"
	}
	ds := dataset.New(names, nTargets, classes)
	rng := sim.NewRNG(31)
	for i := 0; i < n; i++ {
		vecs := make([][]float64, nTargets)
		for t := range vecs {
			v := make([]float64, nFeat)
			for f := range v {
				v[f] = rng.NormFloat64()
			}
			vecs[t] = v
		}
		ds.Add(&dataset.Sample{Label: i % classes, Degradation: 1, Vectors: vecs})
	}
	return ds
}

func weightBits(m Model) []uint64 {
	var out []uint64
	for _, p := range m.Params() {
		for _, w := range p.W {
			out = append(out, math.Float64bits(w))
		}
	}
	return out
}

// trainWithWorkers trains a fresh model of the given constructor with the
// given worker count and returns the final weights' bit patterns and loss.
func trainWithWorkers(t *testing.T, mk func() Model, ds *dataset.Dataset, workers int) ([]uint64, uint64) {
	t.Helper()
	m := mk()
	loss := Train(m, ds, TrainConfig{
		Epochs: 3, Batch: 20, Seed: 99, BalanceClasses: true, Workers: workers,
	})
	return weightBits(m), math.Float64bits(loss)
}

// TestParallelTrainingDeterministic is the load-bearing determinism
// regression: the sharded trainer must produce bit-identical weights and
// losses for every worker count, including the degenerate 1-worker
// schedule, for every replicable model architecture.
func TestParallelTrainingDeterministic(t *testing.T) {
	ds := parallelTestDataset(110, 5, 9, 3) // odd sizes exercise ragged shards
	models := map[string]func() Model{
		"kernel": func() Model {
			return NewKernelModel(KernelConfig{NTargets: 5, NFeat: 9, Classes: 3, Seed: 7})
		},
		"flat": func() Model {
			return NewFlatModel(5, 9, 3, nil, 7)
		},
		"attention": func() Model {
			return NewAttentionModel(AttentionConfig{NTargets: 5, NFeat: 9, Classes: 3, Seed: 7})
		},
	}
	for name, mk := range models {
		t.Run(name, func(t *testing.T) {
			refW, refLoss := trainWithWorkers(t, mk, ds, 1)
			for _, workers := range []int{2, 4, 8} {
				gotW, gotLoss := trainWithWorkers(t, mk, ds, workers)
				if gotLoss != refLoss {
					t.Errorf("workers=%d: loss bits %x != serial %x", workers, gotLoss, refLoss)
				}
				if len(gotW) != len(refW) {
					t.Fatalf("workers=%d: %d weights, want %d", workers, len(gotW), len(refW))
				}
				for i := range gotW {
					if gotW[i] != refW[i] {
						t.Fatalf("workers=%d: weight %d bits %x != serial %x",
							workers, i, gotW[i], refW[i])
					}
				}
			}
		})
	}
}

// TestParallelTrainingLearns sanity-checks that the sharded path actually
// trains: loss must drop and accuracy beat chance on a separable dataset.
func TestParallelTrainingLearns(t *testing.T) {
	nTargets, nFeat := 4, 6
	names := make([]string, nFeat)
	for i := range names {
		names[i] = "f"
	}
	ds := dataset.New(names, nTargets, 2)
	rng := sim.NewRNG(5)
	for i := 0; i < 200; i++ {
		label := i % 2
		vecs := make([][]float64, nTargets)
		for tt := range vecs {
			v := make([]float64, nFeat)
			for f := range v {
				v[f] = rng.NormFloat64() + float64(label)*2.5
			}
			vecs[tt] = v
		}
		ds.Add(&dataset.Sample{Label: label, Degradation: 1, Vectors: vecs})
	}
	m := NewKernelModel(KernelConfig{NTargets: nTargets, NFeat: nFeat, Classes: 2, Seed: 3})
	var first, last float64
	Train(m, ds, TrainConfig{Epochs: 15, Seed: 8, Workers: 4,
		OnEpoch: func(epoch int, loss float64) {
			if epoch == 0 {
				first = loss
			}
			last = loss
		}})
	if !(last < first/2) {
		t.Fatalf("parallel training failed to learn: first epoch loss %.4f, last %.4f", first, last)
	}
	if acc := Evaluate(m, ds).Accuracy(); acc < 0.9 {
		t.Fatalf("parallel training accuracy %.3f < 0.9", acc)
	}
}

// TestShardBounds pins the shard partition: covering, non-overlapping,
// ceil-sized, independent of worker count by construction.
func TestShardBounds(t *testing.T) {
	for _, tc := range []struct{ n, ns int }{
		{32, 8}, {20, 8}, {7, 7}, {1, 1}, {9, 8}, {64, 8},
	} {
		covered := 0
		prevHi := 0
		for s := 0; s < tc.ns; s++ {
			lo, hi := shardBounds(tc.n, tc.ns, s)
			if lo != prevHi && lo < tc.n {
				t.Fatalf("n=%d ns=%d shard %d: gap or overlap at %d (prev end %d)",
					tc.n, tc.ns, s, lo, prevHi)
			}
			if hi > prevHi {
				prevHi = hi
			}
			covered += hi - lo
		}
		if covered != tc.n || prevHi != tc.n {
			t.Fatalf("n=%d ns=%d: shards cover %d ending at %d", tc.n, tc.ns, covered, prevHi)
		}
	}
}

// TestAccumulateGrads checks the pairwise reduction primitive.
func TestAccumulateGrads(t *testing.T) {
	rng := sim.NewRNG(1)
	a := nn.NewDense(3, 2, rng)
	b := a.Replica()
	if &a.W[0] != &b.W[0] {
		t.Fatal("replica does not share weights")
	}
	a.GW[0], b.GW[0] = 1.5, 2.25
	a.GB[1], b.GB[1] = -1, 0.5
	nn.AccumulateGrads(a.Params(), b.Params())
	if a.GW[0] != 3.75 || a.GB[1] != -0.5 {
		t.Fatalf("accumulate wrong: GW0=%g GB1=%g", a.GW[0], a.GB[1])
	}
	if b.GW[0] != 2.25 {
		t.Fatal("accumulate mutated source")
	}
}

// TestReplicaIsolation verifies a replica's backward pass leaves the
// original's gradients and caches untouched while updating shared weights'
// predictions coherently.
func TestReplicaIsolation(t *testing.T) {
	m := NewKernelModel(KernelConfig{NTargets: 3, NFeat: 4, Classes: 2, Seed: 2})
	rep := m.Replica().(*KernelModel)
	vecs := [][]float64{{1, 2, 3, 4}, {0, -1, 1, 0}, {2, 0, 0, 1}}
	rep.LossAndGrad(vecs, 1, 1)
	for i, p := range m.Params() {
		for j, g := range p.G {
			if g != 0 {
				t.Fatalf("replica backward dirtied original grad %d[%d]=%g", i, j, g)
			}
		}
	}
	if m.Predict(vecs) != rep.Predict(vecs) {
		t.Fatal("replica and original disagree on shared weights")
	}
}
