package ml

import (
	"context"
	"fmt"
	"strings"

	"quanterference/internal/dataset"
	"quanterference/internal/nn"
	"quanterference/internal/par"
	"quanterference/internal/sim"
)

// gradShards is the fixed number of gradient shards a mini-batch is split
// into on the data-parallel path. The shard partition and the reduction
// tree depend only on this constant and the batch length — never on the
// worker count — which is what makes trained weights bit-identical across
// TrainConfig.Workers values. Four shards keeps the per-batch reduction
// (shard-count accumulate+zero passes over every parameter) cheap relative
// to the gradient work in each shard at the default batch size of 32.
const gradShards = 4

// TrainConfig controls the training loop.
type TrainConfig struct {
	Epochs int     // default 60
	Batch  int     // default 32
	LR     float64 // default 1e-3
	Seed   int64
	// BalanceClasses weights each sample inversely to its class frequency
	// (the datasets are imbalanced, e.g. DLIO is ~4:1 negative).
	BalanceClasses bool
	// Workers selects the training path. 0 (the default) is the legacy
	// serial loop, kept bit-identical to previous releases. Any value >= 1
	// uses the data-parallel sharded path: each mini-batch is split into
	// gradShards fixed sample ranges, one weight-sharing model replica
	// computes each shard's gradient, and shard gradients are combined by a
	// fixed-order pairwise tree reduction. Weights are bit-identical for
	// every Workers value (1 runs the same shard schedule on the calling
	// goroutine); only wall-clock time changes. Models that do not
	// implement Replicable fall back to the serial loop.
	Workers int
	// OnEpoch, when set, receives the mean training loss after each epoch.
	OnEpoch func(epoch int, loss float64)
}

func (c *TrainConfig) applyDefaults() {
	if c.Epochs == 0 {
		c.Epochs = 60
	}
	if c.Batch == 0 {
		c.Batch = 32
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
}

// classWeights computes the per-class loss weights for a dataset.
func classWeights(train *dataset.Dataset, balance bool) []float64 {
	weights := make([]float64, train.Classes)
	for i := range weights {
		weights[i] = 1
	}
	if balance {
		counts := train.ClassCounts()
		for c, n := range counts {
			if n > 0 {
				weights[c] = float64(train.Len()) / (float64(train.Classes) * float64(n))
			}
		}
	}
	return weights
}

// Train fits the model on the dataset with Adam and mini-batches.
// It returns the final mean training loss.
//
// With cfg.Workers >= 1 and a Replicable model, gradient computation is
// data-parallel with a deterministic reduction; see TrainConfig.Workers for
// the exact contract. Both paths consume the same RNG stream, so they see
// identical shuffles; they differ only in gradient summation order.
func Train(m Model, train *dataset.Dataset, cfg TrainConfig) float64 {
	loss, _ := TrainCtx(context.Background(), m, train, cfg)
	return loss
}

// TrainCtx is Train with cancellation: the epoch loop (on both the serial
// and the data-parallel path) checks ctx before each epoch and returns
// ctx.Err() with the loss so far when the context is done. Epochs that ran
// are exactly the epochs Train would have run — cancellation never perturbs
// the RNG stream or the gradient arithmetic, so an uncancelled TrainCtx is
// bit-identical to Train.
func TrainCtx(ctx context.Context, m Model, train *dataset.Dataset, cfg TrainConfig) (float64, error) {
	cfg.applyDefaults()
	if train.Len() == 0 {
		panic("ml: empty training set")
	}
	weights := classWeights(train, cfg.BalanceClasses)
	if cfg.Workers >= 1 {
		if r, ok := m.(Replicable); ok {
			return trainSharded(ctx, r, train, cfg, weights)
		}
	}
	opt := nn.NewAdam(cfg.LR)
	rng := sim.NewRNG(cfg.Seed ^ 0x7a11)
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return lastLoss, err
		}
		perm := rng.Perm(train.Len())
		var epochLoss float64
		for start := 0; start < len(perm); start += cfg.Batch {
			end := start + cfg.Batch
			if end > len(perm) {
				end = len(perm)
			}
			for _, idx := range perm[start:end] {
				s := train.Samples[idx]
				epochLoss += m.LossAndGrad(s.Vectors, s.Label, weights[s.Label])
			}
			opt.Step(m.Params(), 1/float64(end-start))
		}
		lastLoss = epochLoss / float64(train.Len())
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, lastLoss)
		}
	}
	return lastLoss, nil
}

// shardBounds splits n samples into ns shards by ceiling division and
// returns shard s's [lo, hi) range (possibly empty for trailing shards).
func shardBounds(n, ns, s int) (int, int) {
	size := (n + ns - 1) / ns
	lo := s * size
	hi := lo + size
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// trainSharded is the data-parallel gradient path: per-shard model replicas
// fan out via par.MapN, then a fixed-order pairwise tree combines shard
// gradients and losses. All floating-point summation orders are functions
// of the batch length alone, so weights are bit-identical for any
// cfg.Workers >= 1.
func trainSharded(ctx context.Context, m Replicable, train *dataset.Dataset, cfg TrainConfig, weights []float64) (float64, error) {
	opt := nn.NewAdam(cfg.LR)
	rng := sim.NewRNG(cfg.Seed ^ 0x7a11)
	mainParams := m.Params()
	replicas := make([]Model, gradShards)
	repParams := make([][]nn.Param, gradShards)
	for i := range replicas {
		replicas[i] = m.Replica()
		repParams[i] = replicas[i].Params()
	}
	losses := make([]float64, gradShards)
	var lastLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return lastLoss, err
		}
		perm := rng.Perm(train.Len())
		var epochLoss float64
		for start := 0; start < len(perm); start += cfg.Batch {
			end := start + cfg.Batch
			if end > len(perm) {
				end = len(perm)
			}
			batch := perm[start:end]
			ns := gradShards
			if len(batch) < ns {
				ns = len(batch)
			}
			// Each shard accumulates into its own replica: no shared
			// mutable state between workers until the barrier below.
			par.MapN(ns, cfg.Workers, func(s int) {
				lo, hi := shardBounds(len(batch), ns, s)
				rep := replicas[s]
				var loss float64
				for _, idx := range batch[lo:hi] {
					smp := train.Samples[idx]
					loss += rep.LossAndGrad(smp.Vectors, smp.Label, weights[smp.Label])
				}
				losses[s] = loss
			})
			// Fixed-order pairwise tree reduction over shards 0..ns-1.
			for stride := 1; stride < ns; stride *= 2 {
				for i := 0; i+stride < ns; i += 2 * stride {
					nn.AccumulateGrads(repParams[i], repParams[i+stride])
					nn.ZeroGrads(repParams[i+stride])
					losses[i] += losses[i+stride]
				}
			}
			nn.AccumulateGrads(mainParams, repParams[0])
			nn.ZeroGrads(repParams[0])
			epochLoss += losses[0]
			opt.Step(mainParams, 1/float64(len(batch)))
		}
		lastLoss = epochLoss / float64(train.Len())
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, lastLoss)
		}
	}
	return lastLoss, nil
}

// Confusion is a square confusion matrix: M[true][pred].
type Confusion struct {
	M [][]int
}

// NewConfusion creates an empty matrix for n classes.
func NewConfusion(n int) *Confusion {
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	return &Confusion{M: m}
}

// Add records one prediction.
func (c *Confusion) Add(trueLabel, pred int) { c.M[trueLabel][pred]++ }

// Total returns the number of recorded predictions.
func (c *Confusion) Total() int {
	n := 0
	for _, row := range c.M {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// Accuracy is the fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	correct := 0
	for i := range c.M {
		correct += c.M[i][i]
	}
	total := c.Total()
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// Precision for one class: TP / (TP + FP).
func (c *Confusion) Precision(class int) float64 {
	tp := c.M[class][class]
	col := 0
	for i := range c.M {
		col += c.M[i][class]
	}
	if col == 0 {
		return 0
	}
	return float64(tp) / float64(col)
}

// Recall for one class: TP / (TP + FN).
func (c *Confusion) Recall(class int) float64 {
	tp := c.M[class][class]
	row := 0
	for _, v := range c.M[class] {
		row += v
	}
	if row == 0 {
		return 0
	}
	return float64(tp) / float64(row)
}

// F1 for one class.
func (c *Confusion) F1(class int) float64 {
	p, r := c.Precision(class), c.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 averages F1 over classes.
func (c *Confusion) MacroF1() float64 {
	var s float64
	for i := range c.M {
		s += c.F1(i)
	}
	return s / float64(len(c.M))
}

// Render draws the matrix with per-class P/R/F1, suitable for terminals.
func (c *Confusion) Render(classNames []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "true\\pred")
	for _, n := range classNames {
		fmt.Fprintf(&b, "%10s", n)
	}
	fmt.Fprintf(&b, "%10s%10s%10s\n", "prec", "recall", "f1")
	for i, row := range c.M {
		fmt.Fprintf(&b, "%-10s", classNames[i])
		for _, v := range row {
			fmt.Fprintf(&b, "%10d", v)
		}
		fmt.Fprintf(&b, "%10.3f%10.3f%10.3f\n", c.Precision(i), c.Recall(i), c.F1(i))
	}
	fmt.Fprintf(&b, "accuracy %.3f  macro-F1 %.3f  n=%d\n",
		c.Accuracy(), c.MacroF1(), c.Total())
	return b.String()
}

// Evaluate runs the model over a dataset and tallies the confusion matrix.
func Evaluate(m Model, ds *dataset.Dataset) *Confusion {
	c := NewConfusion(ds.Classes)
	for _, s := range ds.Samples {
		c.Add(s.Label, m.Predict(s.Vectors))
	}
	return c
}
