package ml

import (
	"math"
	"testing"

	"quanterference/internal/dataset"
	"quanterference/internal/sim"
)

// regressionDataset: degradation is a deterministic function of two
// features summed over targets, spanning 1x..16x.
func regressionDataset(n int, seed int64) *dataset.Dataset {
	names := []string{"a", "b", "c"}
	d := dataset.New(names, 4, 2)
	rng := sim.NewRNG(seed)
	for i := 0; i < n; i++ {
		vecs := make([][]float64, 4)
		var load float64
		for t := range vecs {
			v := []float64{rng.Float64(), rng.Float64(), rng.NormFloat64() * 0.05}
			load += v[0] * v[1]
			vecs[t] = v
		}
		deg := math.Exp2(load) // 1x .. 16x
		lbl := 0
		if deg >= 2 {
			lbl = 1
		}
		d.Add(&dataset.Sample{Window: i, Degradation: deg, Label: lbl, Vectors: vecs})
	}
	return d
}

func TestLog2DegradationClampsBelowOne(t *testing.T) {
	if Log2Degradation(0.5) != 0 || Log2Degradation(1) != 0 {
		t.Fatal("sub-1 degradations should clamp to 0")
	}
	if Log2Degradation(8) != 3 {
		t.Fatalf("log2(8)=%f", Log2Degradation(8))
	}
}

func TestRegressorLearnsContinuousTarget(t *testing.T) {
	d := regressionDataset(1500, 11)
	train, test := d.Split(0.2, 2)
	m := NewKernelRegressor(4, 3, 3)
	var first, last float64
	TrainRegressor(m, train, TrainConfig{Epochs: 120, Seed: 4,
		OnEpoch: func(e int, mse float64) {
			if e == 0 {
				first = mse
			}
			last = mse
		}})
	if last >= first {
		t.Fatalf("MSE did not improve: %f -> %f", first, last)
	}
	binOf := func(deg float64) int {
		if deg >= 2 {
			return 1
		}
		return 0
	}
	ev := EvaluateRegressor(m, test, binOf, 2)
	t.Logf("MAE %.3f doublings, RMSE %.3f, binned accuracy %.3f",
		ev.MAELog2, ev.RMSELog2, ev.Binned.Accuracy())
	if ev.MAELog2 > 0.5 {
		t.Fatalf("MAE %.3f doublings too high", ev.MAELog2)
	}
	if ev.Binned.Accuracy() < 0.85 {
		t.Fatalf("binned accuracy %.3f", ev.Binned.Accuracy())
	}
}

func TestRegressorGradCheck(t *testing.T) {
	m := NewKernelRegressor(2, 3, 9)
	vectors := [][]float64{{0.4, -0.2, 1.0}, {-1.1, 0.7, 0.1}}
	target := 1.7
	lossFn := func() float64 {
		y := m.forward(vectors)
		diff := y - target
		m.backward(0)
		for _, p := range m.Params() {
			for j := range p.G {
				p.G[j] = 0
			}
		}
		return diff * diff
	}
	y := m.forward(vectors)
	m.backward(2 * (y - target))
	analytic := make([][]float64, len(m.Params()))
	for i, p := range m.Params() {
		analytic[i] = append([]float64(nil), p.G...)
	}
	for _, p := range m.Params() {
		for j := range p.G {
			p.G[j] = 0
		}
	}
	const h = 1e-6
	for pi, p := range m.Params() {
		for j := range p.W {
			orig := p.W[j]
			p.W[j] = orig + h
			lp := lossFn()
			p.W[j] = orig - h
			lm := lossFn()
			p.W[j] = orig
			numeric := (lp - lm) / (2 * h)
			if math.Abs(analytic[pi][j]-numeric) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("param %d[%d]: analytic %g vs numeric %g", pi, j, analytic[pi][j], numeric)
			}
		}
	}
}

func TestEvaluateRegressorEmptyDataset(t *testing.T) {
	m := NewKernelRegressor(1, 1, 1)
	ev := EvaluateRegressor(m, dataset.New([]string{"x"}, 1, 2), func(float64) int { return 0 }, 2)
	if ev.MAELog2 != 0 || ev.Binned.Total() != 0 {
		t.Fatal("empty dataset should give zero eval")
	}
}
