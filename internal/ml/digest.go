package ml

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// WeightsDigest hashes weight tensors bit-exactly (float64 little-endian
// bits, tensors in ExportWeights order) and returns the first 16 hex digits
// of the sha256 — short enough to stamp on every serving reply, exact enough
// that any single-ulp divergence between same-seed runs changes the digest.
// It is the model-version identity used across the serving and fleet layers:
// two frameworks with the same digest answer bit-identically.
func WeightsDigest(weights [][]float64) string {
	h := sha256.New()
	var buf [8]byte
	for _, tensor := range weights {
		for _, w := range tensor {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(w))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
