package ml

import (
	"context"
	"errors"
	"math"
	"testing"

	"quanterference/internal/dataset"
	"quanterference/internal/sim"
)

func inferTestDataset(n int) *dataset.Dataset {
	names := make([]string, 6)
	for i := range names {
		names[i] = "f"
	}
	ds := dataset.New(names, 3, 2)
	rng := sim.NewRNG(11)
	for i := 0; i < n; i++ {
		vecs := make([][]float64, 3)
		for t := range vecs {
			v := make([]float64, 6)
			for f := range v {
				v[f] = rng.NormFloat64()
			}
			vecs[t] = v
		}
		ds.Add(&dataset.Sample{Label: i % 2, Degradation: 1, Vectors: vecs})
	}
	return ds
}

// TestProbsIntoMatchesProbs pins the serving contract: for every model that
// implements BatchPredictor, ProbsInto produces bit-identical distributions
// to Probs, allocation-free after warm-up, and interleaves safely with
// training passes.
func TestProbsIntoMatchesProbs(t *testing.T) {
	ds := inferTestDataset(32)
	models := map[string]Model{
		"kernel": NewKernelModel(KernelConfig{NTargets: 3, NFeat: 6, Classes: 2, Seed: 5}),
		"flat":   NewFlatModel(3, 6, 2, nil, 5),
	}
	for name, m := range models {
		t.Run(name, func(t *testing.T) {
			bp, ok := m.(BatchPredictor)
			if !ok {
				t.Fatalf("%T does not implement BatchPredictor", m)
			}
			Train(m, ds, TrainConfig{Epochs: 2, Seed: 1})
			dst := make([]float64, 2)
			for _, s := range ds.Samples {
				want := m.Probs(s.Vectors)
				got := bp.ProbsInto(dst, s.Vectors)
				for i := range want {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("probs[%d]: ProbsInto %v != Probs %v", i, got[i], want[i])
					}
				}
				if m.Predict(s.Vectors) != argmax(got) {
					t.Fatal("ProbsInto argmax disagrees with Predict")
				}
			}
			// Training after inference-only passes must still work (no
			// leftover caches).
			Train(m, ds, TrainConfig{Epochs: 1, Seed: 2})
			vecs := ds.Samples[0].Vectors
			if allocs := testing.AllocsPerRun(100, func() { bp.ProbsInto(dst, vecs) }); allocs != 0 {
				t.Fatalf("ProbsInto allocates %v per call, want 0", allocs)
			}
		})
	}
}

// TestDims covers the shape reporting the serving layer validates against.
func TestDims(t *testing.T) {
	m := NewKernelModel(KernelConfig{NTargets: 7, NFeat: 34, Classes: 3, Seed: 1})
	nT, nF, cls, ok := Dims(m)
	if !ok || nT != 7 || nF != 34 || cls != 3 {
		t.Fatalf("Dims(kernel) = %d, %d, %d, %v", nT, nF, cls, ok)
	}
	if _, _, _, ok := Dims(nil); ok {
		t.Fatal("Dims(nil) reported ok")
	}
}

// TestTrainCtxCancellation: a cancelled context stops the epoch loop on both
// training paths, and an uncancelled TrainCtx matches Train bit-for-bit.
func TestTrainCtxCancellation(t *testing.T) {
	ds := inferTestDataset(32)
	for _, workers := range []int{0, 2} {
		newM := func() *KernelModel {
			return NewKernelModel(KernelConfig{NTargets: 3, NFeat: 6, Classes: 2, Seed: 9})
		}
		// Cancel after 2 epochs via OnEpoch.
		ctx, cancel := context.WithCancel(context.Background())
		epochs := 0
		_, err := TrainCtx(ctx, newM(), ds, TrainConfig{
			Epochs: 50, Seed: 1, Workers: workers,
			OnEpoch: func(epoch int, loss float64) {
				epochs++
				if epoch == 1 {
					cancel()
				}
			},
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if epochs != 2 {
			t.Fatalf("workers=%d: ran %d epochs after cancel at epoch 1", workers, epochs)
		}
		// Uncancelled: identical weights to Train.
		a, b := newM(), newM()
		Train(a, ds, TrainConfig{Epochs: 3, Seed: 1, Workers: workers})
		if _, err := TrainCtx(context.Background(), b, ds, TrainConfig{Epochs: 3, Seed: 1, Workers: workers}); err != nil {
			t.Fatal(err)
		}
		pa, pb := a.Params(), b.Params()
		for i := range pa {
			for j := range pa[i].W {
				if math.Float64bits(pa[i].W[j]) != math.Float64bits(pb[i].W[j]) {
					t.Fatalf("workers=%d: weights diverge at param %d[%d]", workers, i, j)
				}
			}
		}
	}
}
