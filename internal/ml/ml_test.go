package ml

import (
	"math"
	"testing"

	"quanterference/internal/dataset"
	"quanterference/internal/sim"
)

// synthDataset builds a dataset whose label depends on an interaction
// between "client" activity and "server" load on the same target — the
// structure the kernel model must learn. Labels: 1 iff any target has both
// high client activity and high server queue.
func synthDataset(n, nTargets, nFeat int, seed int64) *dataset.Dataset {
	names := make([]string, nFeat)
	for i := range names {
		names[i] = "f"
	}
	d := dataset.New(names, nTargets, 2)
	rng := sim.NewRNG(seed)
	for i := 0; i < n; i++ {
		vecs := make([][]float64, nTargets)
		label := 0
		for t := range vecs {
			v := make([]float64, nFeat)
			for f := range v {
				v[f] = rng.NormFloat64() * 0.3
			}
			active := rng.Float64() < 0.4
			loaded := rng.Float64() < 0.4
			if active {
				v[0] = 2 + rng.Float64()
			}
			if loaded {
				v[1] = 2 + rng.Float64()
			}
			if active && loaded {
				label = 1
			}
			vecs[t] = v
		}
		d.Add(&dataset.Sample{Workload: "synth", Window: i, Label: label,
			Degradation: float64(1 + 3*label), Vectors: vecs})
	}
	return d
}

func TestKernelModelLearnsInteraction(t *testing.T) {
	d := synthDataset(1200, 4, 6, 42)
	train, test := d.Split(0.2, 1)
	m := NewKernelModel(KernelConfig{NTargets: 4, NFeat: 6, Classes: 2, Seed: 2})
	Train(m, train, TrainConfig{Epochs: 80, Seed: 3, BalanceClasses: true})
	cm := Evaluate(m, test)
	if f1 := cm.F1(1); f1 < 0.9 {
		t.Fatalf("kernel model F1=%.3f, want >=0.9\n%s", f1, cm.Render([]string{"<2x", ">=2x"}))
	}
}

func TestFlatModelAlsoLearns(t *testing.T) {
	d := synthDataset(1200, 4, 6, 43)
	train, test := d.Split(0.2, 1)
	m := NewFlatModel(4, 6, 2, nil, 2)
	Train(m, train, TrainConfig{Epochs: 80, Seed: 3, BalanceClasses: true})
	if acc := Evaluate(m, test).Accuracy(); acc < 0.8 {
		t.Fatalf("flat model accuracy=%.3f", acc)
	}
}

func TestKernelSampleEfficiencyAcrossTargets(t *testing.T) {
	// §III-C motivation: applications hit different OST subsets in
	// different runs. With the interference signature appearing on a
	// random target each sample and little training data, the shared
	// kernel (which learns the signature once) should beat the flat MLP
	// (which must learn it separately per position).
	mk := func(n int, seed int64) *dataset.Dataset {
		names := []string{"a", "b", "c"}
		d := dataset.New(names, 6, 2)
		rng := sim.NewRNG(seed)
		for i := 0; i < n; i++ {
			vecs := make([][]float64, 6)
			for t := range vecs {
				vecs[t] = []float64{rng.NormFloat64() * 0.2, rng.NormFloat64() * 0.2, rng.NormFloat64() * 0.2}
			}
			label := 0
			if rng.Float64() < 0.5 {
				label = 1
				t := rng.Intn(6)
				vecs[t][0] = 3
				vecs[t][1] = 3
			}
			d.Add(&dataset.Sample{Workload: "x", Window: i, Label: label,
				Degradation: float64(1 + 3*label), Vectors: vecs})
		}
		return d
	}
	train := mk(240, 7)
	test := mk(400, 8)
	km := NewKernelModel(KernelConfig{NTargets: 6, NFeat: 3, Classes: 2, Seed: 5})
	Train(km, train, TrainConfig{Epochs: 60, Seed: 6})
	kAcc := Evaluate(km, test).Accuracy()
	fm := NewFlatModel(6, 3, 2, nil, 5)
	Train(fm, train, TrainConfig{Epochs: 60, Seed: 6})
	fAcc := Evaluate(fm, test).Accuracy()
	t.Logf("kernel acc=%.3f flat acc=%.3f on %d training samples", kAcc, fAcc, train.Len())
	if kAcc < 0.85 {
		t.Fatalf("kernel model accuracy %.3f, want >=0.85", kAcc)
	}
	if kAcc < fAcc {
		t.Fatalf("kernel (%.3f) should not lose to flat (%.3f) here", kAcc, fAcc)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	d := synthDataset(400, 3, 5, 11)
	m := NewKernelModel(KernelConfig{NTargets: 3, NFeat: 5, Classes: 2, Seed: 1})
	var losses []float64
	Train(m, d, TrainConfig{Epochs: 30, Seed: 2,
		OnEpoch: func(_ int, l float64) { losses = append(losses, l) }})
	if len(losses) != 30 {
		t.Fatalf("epochs=%d", len(losses))
	}
	if losses[len(losses)-1] >= losses[0] {
		t.Fatalf("loss did not decrease: %f -> %f", losses[0], losses[len(losses)-1])
	}
}

func TestPredictProbsConsistent(t *testing.T) {
	m := NewKernelModel(KernelConfig{NTargets: 2, NFeat: 3, Classes: 3, Seed: 9})
	vecs := [][]float64{{1, 2, 3}, {-1, 0, 1}}
	p := m.Probs(vecs)
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum %f", sum)
	}
	pred := m.Predict(vecs)
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	if pred != best {
		t.Fatalf("predict %d != argmax %d", pred, best)
	}
	// Inference must not leak caches or gradients.
	for i := 0; i < 10; i++ {
		if m.Predict(vecs) != pred {
			t.Fatal("repeated inference unstable")
		}
	}
	for _, prm := range m.Params() {
		for _, g := range prm.G {
			if g != 0 {
				t.Fatal("inference left gradients behind")
			}
		}
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := NewConfusion(2)
	// 50 TN, 10 FP, 5 FN, 35 TP.
	for i := 0; i < 50; i++ {
		c.Add(0, 0)
	}
	for i := 0; i < 10; i++ {
		c.Add(0, 1)
	}
	for i := 0; i < 5; i++ {
		c.Add(1, 0)
	}
	for i := 0; i < 35; i++ {
		c.Add(1, 1)
	}
	if c.Total() != 100 {
		t.Fatalf("total=%d", c.Total())
	}
	if math.Abs(c.Accuracy()-0.85) > 1e-12 {
		t.Fatalf("accuracy=%f", c.Accuracy())
	}
	if math.Abs(c.Precision(1)-35.0/45) > 1e-12 {
		t.Fatalf("precision=%f", c.Precision(1))
	}
	if math.Abs(c.Recall(1)-35.0/40) > 1e-12 {
		t.Fatalf("recall=%f", c.Recall(1))
	}
	wantF1 := 2 * (35.0 / 45) * (35.0 / 40) / ((35.0 / 45) + (35.0 / 40))
	if math.Abs(c.F1(1)-wantF1) > 1e-12 {
		t.Fatalf("f1=%f want %f", c.F1(1), wantF1)
	}
}

func TestConfusionEmptyClassSafe(t *testing.T) {
	c := NewConfusion(3)
	c.Add(0, 0)
	if c.Precision(2) != 0 || c.Recall(2) != 0 || c.F1(2) != 0 {
		t.Fatal("empty class should give zero metrics, not NaN")
	}
	if math.IsNaN(c.MacroF1()) {
		t.Fatal("macro F1 NaN")
	}
}

func TestRenderContainsCounts(t *testing.T) {
	c := NewConfusion(2)
	c.Add(0, 0)
	c.Add(1, 1)
	out := c.Render([]string{"neg", "pos"})
	if len(out) == 0 || out[0] == 0 {
		t.Fatal("empty render")
	}
}

func TestClassWeightsHelpImbalance(t *testing.T) {
	// 9:1 imbalance; with weighting the minority recall should be decent.
	names := []string{"x"}
	d := dataset.New(names, 1, 2)
	rng := sim.NewRNG(3)
	for i := 0; i < 1000; i++ {
		label := 0
		x := rng.NormFloat64()*0.5 - 0.3
		if i%10 == 0 {
			label = 1
			x = rng.NormFloat64()*0.5 + 1.2
		}
		d.Add(&dataset.Sample{Window: i, Label: label, Degradation: 1,
			Vectors: [][]float64{{x}}})
	}
	train, test := d.Split(0.2, 4)
	m := NewKernelModel(KernelConfig{NTargets: 1, NFeat: 1, Classes: 2, Seed: 5})
	Train(m, train, TrainConfig{Epochs: 40, Seed: 6, BalanceClasses: true})
	if rec := Evaluate(m, test).Recall(1); rec < 0.7 {
		t.Fatalf("minority recall %f with class weights", rec)
	}
}
