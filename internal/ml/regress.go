package ml

import (
	"math"

	"quanterference/internal/dataset"
	"quanterference/internal/nn"
	"quanterference/internal/sim"
)

// KernelRegressor predicts the exact slowdown level rather than a bin — the
// extension the paper explicitly set aside ("we do not try to predict the
// exact slowdown ratio"). It reuses the kernel architecture with a single
// linear output trained with MSE on log2(degradation), so a prediction of
// 0 means "no slowdown" and each unit is a doubling.
type KernelRegressor struct {
	Kernel *nn.Sequential
	Head   *nn.Sequential

	nTargets int
	nFeat    int
}

// NewKernelRegressor sizes the regressor like NewKernelModel.
func NewKernelRegressor(nTargets, nFeat int, seed int64) *KernelRegressor {
	rng := sim.NewRNG(seed ^ 0x4e57)
	return &KernelRegressor{
		Kernel:   nn.MLP(rng, nFeat, 32, 16, 1),
		Head:     nn.MLP(rng, nTargets, 16, 1),
		nTargets: nTargets,
		nFeat:    nFeat,
	}
}

func (m *KernelRegressor) forward(vectors [][]float64) float64 {
	if len(vectors) != m.nTargets {
		panic("ml: wrong target count")
	}
	z := make([]float64, m.nTargets)
	for t, v := range vectors {
		z[t] = m.Kernel.Forward(v)[0]
	}
	return m.Head.Forward(z)[0]
}

func (m *KernelRegressor) backward(dout float64) {
	dz := m.Head.Backward([]float64{dout})
	for t := m.nTargets - 1; t >= 0; t-- {
		m.Kernel.Backward([]float64{dz[t]})
	}
}

// PredictLog2 returns the predicted log2 slowdown.
func (m *KernelRegressor) PredictLog2(vectors [][]float64) float64 {
	y := m.forward(vectors)
	m.backward(0)
	nn.ZeroGrads(m.Params())
	return y
}

// Params exposes trainable parameters.
func (m *KernelRegressor) Params() []nn.Param {
	return append(m.Kernel.Params(), m.Head.Params()...)
}

// Log2Degradation is the regression target for a sample.
func Log2Degradation(deg float64) float64 {
	if deg < 1 {
		deg = 1
	}
	return math.Log2(deg)
}

// TrainRegressor fits the regressor with Adam and MSE on log2(degradation).
// It returns the final epoch's mean squared error.
func TrainRegressor(m *KernelRegressor, train *dataset.Dataset, cfg TrainConfig) float64 {
	cfg.applyDefaults()
	if train.Len() == 0 {
		panic("ml: empty training set")
	}
	opt := nn.NewAdam(cfg.LR)
	rng := sim.NewRNG(cfg.Seed ^ 0x9e57)
	var last float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		perm := rng.Perm(train.Len())
		var sse float64
		for start := 0; start < len(perm); start += cfg.Batch {
			end := start + cfg.Batch
			if end > len(perm) {
				end = len(perm)
			}
			for _, idx := range perm[start:end] {
				s := train.Samples[idx]
				y := m.forward(s.Vectors)
				target := Log2Degradation(s.Degradation)
				diff := y - target
				sse += diff * diff
				m.backward(2 * diff)
			}
			opt.Step(m.Params(), 1/float64(end-start))
		}
		last = sse / float64(train.Len())
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, last)
		}
	}
	return last
}

// RegressorEval summarizes a regressor on held-out data.
type RegressorEval struct {
	// MAELog2 is the mean absolute error in doublings.
	MAELog2 float64
	// RMSELog2 is the root mean squared error in doublings.
	RMSELog2 float64
	// Binned classifies the continuous predictions with the given bins,
	// making the regressor directly comparable to the classifiers.
	Binned *Confusion
}

// EvaluateRegressor computes log-space errors and a binned confusion matrix
// using labelOf (e.g. label.Bins.Label) over the de-logged predictions.
func EvaluateRegressor(m *KernelRegressor, ds *dataset.Dataset, labelOf func(deg float64) int, classes int) RegressorEval {
	ev := RegressorEval{Binned: NewConfusion(classes)}
	if ds.Len() == 0 {
		return ev
	}
	var absSum, sqSum float64
	for _, s := range ds.Samples {
		pred := m.PredictLog2(s.Vectors)
		target := Log2Degradation(s.Degradation)
		diff := pred - target
		absSum += math.Abs(diff)
		sqSum += diff * diff
		ev.Binned.Add(labelOf(s.Degradation), labelOf(math.Exp2(pred)))
	}
	n := float64(ds.Len())
	ev.MAELog2 = absSum / n
	ev.RMSELog2 = math.Sqrt(sqSum / n)
	return ev
}
