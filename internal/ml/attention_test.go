package ml

import (
	"math"
	"testing"

	"quanterference/internal/nn"
)

func attnFixture() (*AttentionModel, [][]float64) {
	m := NewAttentionModel(AttentionConfig{
		NTargets: 3, NFeat: 4, Classes: 2, Dim: 5, Seed: 7,
	})
	vectors := [][]float64{
		{0.5, -1.2, 0.3, 2.0},
		{1.5, 0.2, -0.7, 0.0},
		{-0.4, 0.9, 1.1, -1.3},
	}
	return m, vectors
}

// TestAttentionGradCheck verifies the hand-written attention backward
// against finite differences on every parameter.
func TestAttentionGradCheck(t *testing.T) {
	m, vectors := attnFixture()
	label := 1
	lossFn := func() float64 {
		st := m.forward(vectors)
		l, _ := nn.SoftmaxCE(st.logits, label, 1)
		m.backward(st, make([]float64, 2))
		nn.ZeroGrads(m.Params())
		return l
	}
	// Analytic pass.
	st := m.forward(vectors)
	_, dlogits := nn.SoftmaxCE(st.logits, label, 1)
	m.backward(st, dlogits)
	analytic := make([][]float64, len(m.Params()))
	for i, p := range m.Params() {
		analytic[i] = append([]float64(nil), p.G...)
	}
	nn.ZeroGrads(m.Params())
	const h = 1e-6
	for pi, p := range m.Params() {
		for j := range p.W {
			orig := p.W[j]
			p.W[j] = orig + h
			lp := lossFn()
			p.W[j] = orig - h
			lm := lossFn()
			p.W[j] = orig
			numeric := (lp - lm) / (2 * h)
			if math.Abs(analytic[pi][j]-numeric) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("param %d[%d]: analytic %g vs numeric %g",
					pi, j, analytic[pi][j], numeric)
			}
		}
	}
}

func TestAttentionProbsValid(t *testing.T) {
	m, vectors := attnFixture()
	p := m.Probs(vectors)
	var sum float64
	for _, v := range p {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Fatalf("bad prob %v", p)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum=%f", sum)
	}
	// Inference leaves no gradients or caches behind.
	first := m.Predict(vectors)
	for i := 0; i < 5; i++ {
		if m.Predict(vectors) != first {
			t.Fatal("inference unstable")
		}
	}
	for _, prm := range m.Params() {
		for _, g := range prm.G {
			if g != 0 {
				t.Fatal("inference leaked gradients")
			}
		}
	}
}

func TestAttentionLearnsInteraction(t *testing.T) {
	d := synthDataset(1000, 4, 6, 77)
	train, test := d.Split(0.2, 1)
	m := NewAttentionModel(AttentionConfig{NTargets: 4, NFeat: 6, Classes: 2, Seed: 3})
	Train(m, train, TrainConfig{Epochs: 80, Seed: 4, BalanceClasses: true})
	if acc := Evaluate(m, test).Accuracy(); acc < 0.85 {
		t.Fatalf("attention model accuracy %.3f", acc)
	}
}

func TestAttentionPermutationPooling(t *testing.T) {
	// With mean pooling over attended rows, permuting the server order
	// must not change the prediction (a stronger invariance than the
	// kernel model's, whose head has positional weights).
	m, vectors := attnFixture()
	p1 := m.Probs(vectors)
	permuted := [][]float64{vectors[2], vectors[0], vectors[1]}
	p2 := m.Probs(permuted)
	for i := range p1 {
		if math.Abs(p1[i]-p2[i]) > 1e-9 {
			t.Fatalf("not permutation invariant: %v vs %v", p1, p2)
		}
	}
}
