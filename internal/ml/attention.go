package ml

import (
	"math"

	"quanterference/internal/nn"
	"quanterference/internal/sim"
)

// AttentionModel implements the paper's stated future direction ("other
// possible network architectures, such as transformers"): a single-head
// self-attention block over the per-server vectors.
//
// Each server vector is embedded by a shared network (like the kernel
// model), the embeddings attend to each other — letting the model weigh,
// say, a loaded OST against the application's activity on a different OST —
// and the attended embeddings are mean-pooled into an MLP head. Unlike the
// kernel and flat models, the architecture is permutation-equivariant over
// servers up to the pooling, so it shares the kernel model's placement
// invariance while modelling cross-server interactions explicitly.
type AttentionModel struct {
	Embed      *nn.Sequential // per-server vector -> d
	Wq, Wk, Wv *nn.Dense      // d -> d projections
	Head       *nn.Sequential // d -> classes

	nTargets int
	nFeat    int
	d        int
	classes  int

	ce     nn.CEScratch
	params []nn.Param // lazily cached Params() slice
}

// Replica implements Replicable: the returned model shares every weight
// tensor with m but owns private gradients, caches, and scratch.
func (m *AttentionModel) Replica() Model {
	return &AttentionModel{
		Embed: m.Embed.Replica(),
		Wq:    m.Wq.Replica(), Wk: m.Wk.Replica(), Wv: m.Wv.Replica(),
		Head:     m.Head.Replica(),
		nTargets: m.nTargets, nFeat: m.nFeat, d: m.d, classes: m.classes,
	}
}

// AttentionConfig sizes the model.
type AttentionConfig struct {
	NTargets int
	NFeat    int
	Classes  int
	// Dim is the embedding width (default 16).
	Dim int
	// EmbedHidden are the shared embedder's hidden sizes (default 32).
	EmbedHidden []int
	// HeadHidden are the classifier's hidden sizes (default 16).
	HeadHidden []int
	Seed       int64
}

// NewAttentionModel builds the model.
func NewAttentionModel(cfg AttentionConfig) *AttentionModel {
	if cfg.NTargets <= 0 || cfg.NFeat <= 0 || cfg.Classes < 2 {
		panic("ml: bad attention model config")
	}
	if cfg.Dim == 0 {
		cfg.Dim = 16
	}
	if cfg.EmbedHidden == nil {
		cfg.EmbedHidden = []int{32}
	}
	if cfg.HeadHidden == nil {
		cfg.HeadHidden = []int{16}
	}
	rng := sim.NewRNG(cfg.Seed ^ 0xa77e)
	eSizes := append([]int{cfg.NFeat}, cfg.EmbedHidden...)
	eSizes = append(eSizes, cfg.Dim)
	hSizes := append([]int{cfg.Dim}, cfg.HeadHidden...)
	hSizes = append(hSizes, cfg.Classes)
	return &AttentionModel{
		Embed:    nn.MLP(rng, eSizes...),
		Wq:       nn.NewDense(cfg.Dim, cfg.Dim, rng),
		Wk:       nn.NewDense(cfg.Dim, cfg.Dim, rng),
		Wv:       nn.NewDense(cfg.Dim, cfg.Dim, rng),
		Head:     nn.MLP(rng, hSizes...),
		nTargets: cfg.NTargets,
		nFeat:    cfg.NFeat,
		d:        cfg.Dim,
		classes:  cfg.Classes,
	}
}

// attnState caches one forward pass for the hand-written backward.
type attnState struct {
	q, k, v [][]float64 // n x d
	attn    [][]float64 // n x n, row-softmaxed
	logits  []float64
}

// forward computes logits, leaving layer caches in place for backward.
func (m *AttentionModel) forward(vectors [][]float64) *attnState {
	if len(vectors) != m.nTargets {
		panic("ml: wrong target count")
	}
	n, d := m.nTargets, m.d
	st := &attnState{
		q: make([][]float64, n), k: make([][]float64, n), v: make([][]float64, n),
		attn: make([][]float64, n),
	}
	// Shared embedding then Q/K/V projections, row by row (LIFO caches).
	embedded := make([][]float64, n)
	for i, x := range vectors {
		embedded[i] = m.Embed.Forward(x)
	}
	for i := 0; i < n; i++ {
		st.q[i] = m.Wq.Forward(embedded[i])
	}
	for i := 0; i < n; i++ {
		st.k[i] = m.Wk.Forward(embedded[i])
	}
	for i := 0; i < n; i++ {
		st.v[i] = m.Wv.Forward(embedded[i])
	}
	// Scaled dot-product attention.
	invSqrt := 1 / math.Sqrt(float64(d))
	for i := 0; i < n; i++ {
		scores := make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for a := 0; a < d; a++ {
				s += st.q[i][a] * st.k[j][a]
			}
			scores[j] = s * invSqrt
		}
		st.attn[i] = nn.Softmax(scores)
	}
	// Z = A V, mean-pooled over rows.
	pooled := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			aij := st.attn[i][j]
			for a := 0; a < d; a++ {
				pooled[a] += aij * st.v[j][a]
			}
		}
	}
	for a := range pooled {
		pooled[a] /= float64(n)
	}
	st.logits = m.Head.Forward(pooled)
	return st
}

// backward propagates dlogits through the attention block and all layers,
// accumulating parameter gradients and consuming the forward caches.
func (m *AttentionModel) backward(st *attnState, dlogits []float64) {
	n, d := m.nTargets, m.d
	dpooled := m.Head.Backward(dlogits)
	// dZ[i][a] = dpooled[a]/n for every row i.
	dZrow := make([]float64, d)
	for a := 0; a < d; a++ {
		dZrow[a] = dpooled[a] / float64(n)
	}
	// dV[j] = sum_i A[i][j] * dZ[i]; dA[i][j] = dZ[i] . V[j].
	dV := make([][]float64, n)
	for j := 0; j < n; j++ {
		dV[j] = make([]float64, d)
	}
	dS := make([][]float64, n) // gradient on pre-softmax scores
	invSqrt := 1 / math.Sqrt(float64(d))
	for i := 0; i < n; i++ {
		dA := make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for a := 0; a < d; a++ {
				s += dZrow[a] * st.v[j][a]
			}
			dA[j] = s
			aij := st.attn[i][j]
			for a := 0; a < d; a++ {
				dV[j][a] += aij * dZrow[a]
			}
		}
		// Softmax backward: dS = (dA - (dA.A)) * A, scaled.
		var dot float64
		for j := 0; j < n; j++ {
			dot += dA[j] * st.attn[i][j]
		}
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			row[j] = (dA[j] - dot) * st.attn[i][j] * invSqrt
		}
		dS[i] = row
	}
	// dQ[i] = sum_j dS[i][j] K[j]; dK[j] = sum_i dS[i][j] Q[i].
	dQ := make([][]float64, n)
	dK := make([][]float64, n)
	for i := 0; i < n; i++ {
		dQ[i] = make([]float64, d)
		dK[i] = make([]float64, d)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g := dS[i][j]
			for a := 0; a < d; a++ {
				dQ[i][a] += g * st.k[j][a]
				dK[j][a] += g * st.q[i][a]
			}
		}
	}
	// Projections were forwarded Q rows, then K rows, then V rows: the
	// per-layer caches are independent stacks, so each unwinds in reverse
	// row order; the embedder's stack unwinds rows in reverse with the
	// three projection contributions summed.
	dEmbed := make([][]float64, n)
	for i := n - 1; i >= 0; i-- {
		dEmbed[i] = m.Wv.Backward(dV[i])
	}
	for i := n - 1; i >= 0; i-- {
		dx := m.Wk.Backward(dK[i])
		for a := 0; a < d; a++ {
			dEmbed[i][a] += dx[a]
		}
	}
	for i := n - 1; i >= 0; i-- {
		dx := m.Wq.Backward(dQ[i])
		for a := 0; a < d; a++ {
			dEmbed[i][a] += dx[a]
		}
	}
	for i := n - 1; i >= 0; i-- {
		m.Embed.BackwardNoDX(dEmbed[i])
	}
}

// Probs implements Model.
func (m *AttentionModel) Probs(vectors [][]float64) []float64 {
	st := m.forward(vectors)
	m.backward(st, make([]float64, m.classes)) // drain caches
	nn.ZeroGrads(m.Params())
	return nn.Softmax(st.logits)
}

// Predict implements Model.
func (m *AttentionModel) Predict(vectors [][]float64) int {
	return argmax(m.Probs(vectors))
}

// LossAndGrad implements Model.
func (m *AttentionModel) LossAndGrad(vectors [][]float64, label int, weight float64) float64 {
	st := m.forward(vectors)
	loss, dlogits := m.ce.SoftmaxCE(st.logits, label, weight)
	m.backward(st, dlogits)
	return loss
}

// Params implements Model.
func (m *AttentionModel) Params() []nn.Param {
	if m.params == nil {
		out := m.Embed.Params()
		out = append(out, m.Wq.Params()...)
		out = append(out, m.Wk.Params()...)
		out = append(out, m.Wv.Params()...)
		m.params = append(out, m.Head.Params()...)
	}
	return m.params
}

var _ Replicable = (*AttentionModel)(nil)
