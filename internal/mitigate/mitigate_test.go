package mitigate

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/forecast"
	"quanterference/internal/label"
	"quanterference/internal/lustre"
	"quanterference/internal/monitor/window"
	"quanterference/internal/nn"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

// thresholdModel is a deterministic, training-free ml.Model for tests: it
// predicts class 1 whenever the first feature (cli_reads) of target 0
// exceeds 5.
type thresholdModel struct{}

func (thresholdModel) Probs(vectors [][]float64) []float64 {
	if vectors[0][0] > 5 {
		return []float64{0.1, 0.9}
	}
	return []float64{0.9, 0.1}
}
func (m thresholdModel) Predict(vectors [][]float64) int {
	p := m.Probs(vectors)
	if p[1] > p[0] {
		return 1
	}
	return 0
}
func (thresholdModel) LossAndGrad([][]float64, int, float64) float64 { return 0 }
func (thresholdModel) Params() []nn.Param                            { return nil }

// stubFramework wraps the threshold model with an identity scaler.
func stubFramework() *core.Framework {
	nFeat := window.NumFeatures
	scaler := &dataset.Scaler{Mean: make([]float64, nFeat), Std: make([]float64, nFeat)}
	for i := range scaler.Std {
		scaler.Std[i] = 1
	}
	return &core.Framework{
		Bins:   label.BinaryBins(),
		Model:  thresholdModel{},
		Scaler: scaler,
	}
}

// mustNew is New for tests with configs that must be valid.
func mustNew(t *testing.T, cl *core.Cluster, fw *core.Framework, victims []*lustre.Client, windowSize sim.Time, cfg Config) *Controller {
	t.Helper()
	ctrl, err := New(cl, fw, victims, windowSize, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return ctrl
}

// readRecord fabricates one read record targeting OST 0 in the given window.
func readRecord(windowIdx, seq int) workload.Record {
	start := sim.Time(windowIdx)*sim.Second + sim.Time(seq+1)*sim.Millisecond
	return workload.Record{
		Workload: "t", Rank: 0, Seq: seq,
		Op:    workload.Op{Kind: workload.Read, Size: 1 << 20},
		Start: start, End: start + sim.Millisecond,
		Targets: []int{0},
	}
}

func TestControllerEngagesAndReleases(t *testing.T) {
	cl := core.NewCluster(lustre.PaperTopology(), lustre.Config{})
	fw := stubFramework()
	victim := cl.FS.Client("c1")
	ctrl := mustNew(t, cl, fw, []*lustre.Client{victim}, sim.Second, Config{
		ThrottleBps: 1e6, ReleaseAfter: 2,
	})
	// Windows 0 and 1 look interfered (10 reads each); windows 2+ are
	// clean (no records).
	for w := 0; w < 2; w++ {
		for s := 0; s < 10; s++ {
			ctrl.Record(readRecord(w, s))
		}
	}
	// Advance through window 1's boundary: controller must be engaged.
	cl.Eng.RunUntil(sim.Seconds(2.5))
	if !ctrl.Engaged() {
		t.Fatalf("controller not engaged after hot windows: %+v", ctrl.Actions())
	}
	if !victim.RateLimited() {
		t.Fatal("victim not rate limited while engaged")
	}
	// Two clean windows (2 and 3) must release it; one is not enough.
	cl.Eng.RunUntil(sim.Seconds(3.5))
	if !ctrl.Engaged() {
		t.Fatal("released after a single clean window (hysteresis broken)")
	}
	cl.Eng.RunUntil(sim.Seconds(4.5))
	if ctrl.Engaged() {
		t.Fatal("controller should have released after two clean windows")
	}
	if victim.RateLimited() {
		t.Fatal("victim still limited after release")
	}
	// Engagements counted once despite repeated hot windows.
	engagements := 0
	for _, a := range ctrl.Actions() {
		if a.Switched && a.Engaged {
			engagements++
		}
	}
	if engagements != 1 {
		t.Fatalf("engagements=%d, want 1", engagements)
	}
	ctrl.Stop()
}

func TestControllerReEngages(t *testing.T) {
	cl := core.NewCluster(lustre.PaperTopology(), lustre.Config{})
	ctrl := mustNew(t, cl, stubFramework(), []*lustre.Client{cl.FS.Client("c1")}, sim.Second,
		Config{ReleaseAfter: 1})
	// Hot window 0, clean 1, hot 2.
	for s := 0; s < 10; s++ {
		ctrl.Record(readRecord(0, s))
		ctrl.Record(readRecord(2, s))
	}
	cl.Eng.RunUntil(sim.Seconds(3.5))
	engagements := 0
	for _, a := range ctrl.Actions() {
		if a.Switched && a.Engaged {
			engagements++
		}
	}
	if engagements != 2 {
		t.Fatalf("engagements=%d, want 2 (re-engage after release)", engagements)
	}
	ctrl.Stop()
}

// Regression: EngageClass 0 used to be silently rewritten to 1 by
// applyDefaults, making "engage on every prediction" impossible to request.
// The EngageAlways sentinel now maps to a real threshold of 0 — and ONLY the
// sentinel: any other negative value (a typo'd -5) used to silently become
// the always-throttle configuration and must now be rejected.
func TestEngageAlwaysSentinel(t *testing.T) {
	cases := []struct {
		name string
		in   int
		want int
	}{
		{"zero-means-default", 0, 1},
		{"explicit-class", 2, 2},
		{"engage-always", EngageAlways, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{EngageClass: tc.in}
			if err := cfg.validate(); err != nil {
				t.Fatalf("validate rejected legal EngageClass %d: %v", tc.in, err)
			}
			cfg.applyDefaults()
			if cfg.EngageClass != tc.want {
				t.Fatalf("EngageClass %d defaulted to %d, want %d", tc.in, cfg.EngageClass, tc.want)
			}
		})
	}
}

// TestNewRejectsInvalidConfig pins the typed-error contract: New refuses
// negative engage classes other than the sentinel (and negative rates), with
// an error matching ErrInvalidConfig.
func TestNewRejectsInvalidConfig(t *testing.T) {
	cl := core.NewCluster(lustre.PaperTopology(), lustre.Config{})
	cases := []struct {
		name string
		cfg  Config
	}{
		{"typoed-engage-class", Config{EngageClass: -5}},
		{"negative-throttle", Config{ThrottleBps: -1}},
		{"negative-release", Config{ReleaseAfter: -2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctrl, err := New(cl, stubFramework(), nil, sim.Second, tc.cfg)
			if err == nil {
				ctrl.Stop()
				t.Fatalf("New accepted %+v", tc.cfg)
			}
			if !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("error %v does not match ErrInvalidConfig", err)
			}
		})
	}
}

func TestEngageAlwaysThrottlesOnCleanPredictions(t *testing.T) {
	cl := core.NewCluster(lustre.PaperTopology(), lustre.Config{})
	victim := cl.FS.Client("c1")
	ctrl := mustNew(t, cl, stubFramework(), []*lustre.Client{victim}, sim.Second,
		Config{EngageClass: EngageAlways})
	// Class-0 prediction: an EngageAlways controller must still throttle.
	ctrl.decide(cl.Eng.Now(), 0, 0)
	if !ctrl.Engaged() || !victim.RateLimited() {
		t.Fatal("EngageAlways controller ignored a class-0 prediction")
	}
	ctrl.Stop()
}

func TestControllerStopRemovesLimits(t *testing.T) {
	cl := core.NewCluster(lustre.PaperTopology(), lustre.Config{})
	victim := cl.FS.Client("c1")
	ctrl := mustNew(t, cl, stubFramework(), []*lustre.Client{victim}, sim.Second, Config{})
	ctrl.decide(cl.Eng.Now(), 0, 1)
	if !victim.RateLimited() {
		t.Fatal("engage did not limit victim")
	}
	ctrl.Stop()
	if victim.RateLimited() {
		t.Fatal("Stop left the limit in place")
	}
	if ctrl.Summary() == "" {
		t.Fatal("empty summary")
	}
}

// fcMaxModel is a deterministic forecast head for tests: over pooled rows
// (mean at 2j, max at 2j+1) it predicts class 1 when the max of feature 0
// (cli_reads on the busiest target) exceeds 2 in the newest pooled window.
type fcMaxModel struct{}

func (fcMaxModel) Probs(vectors [][]float64) []float64 {
	if vectors[len(vectors)-1][1] > 2 {
		return []float64{0.1, 0.9}
	}
	return []float64{0.9, 0.1}
}
func (m fcMaxModel) Predict(vectors [][]float64) int {
	p := m.Probs(vectors)
	if p[1] > p[0] {
		return 1
	}
	return 0
}
func (fcMaxModel) LossAndGrad([][]float64, int, float64) float64 { return 0 }
func (fcMaxModel) Params() []nn.Param                            { return nil }

// stubForecaster wires fcMaxModel as a single 2-window-ahead head with an
// identity scaler over the pooled width.
func stubForecaster(history int) *forecast.Forecaster {
	n := 2 * window.NumFeatures
	scaler := &dataset.Scaler{Mean: make([]float64, n), Std: make([]float64, n)}
	for i := range scaler.Std {
		scaler.Std[i] = 1
	}
	return &forecast.Forecaster{
		History:   history,
		Threshold: 1,
		Bins:      label.BinaryBins(),
		Heads:     []*forecast.Head{{Horizon: 2, Model: fcMaxModel{}, Scaler: scaler}},
	}
}

// TestControllerProactiveEngagesAheadOfClassifier drives windows that the
// current-window classifier calls clean (4 reads, under its >5 threshold)
// but the forecast head alarms on (max pooled reads > 2): the proactive
// controller must engage on the forecast alone, before any hot window
// exists, and log the forecast as the reason.
func TestControllerProactiveEngagesAheadOfClassifier(t *testing.T) {
	cl := core.NewCluster(lustre.PaperTopology(), lustre.Config{})
	victim := cl.FS.Client("c1")
	policy, err := NewProactiveThrottle(WithLead(4))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(cl, stubFramework(), []Victim{{Client: victim}}, sim.Second,
		policy, WithForecaster(stubForecaster(2)))
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 2; w++ {
		for s := 0; s < 4; s++ {
			ctrl.Record(readRecord(w, s))
		}
	}
	cl.Eng.RunUntil(sim.Seconds(2.5))
	if !ctrl.Engaged() || !victim.RateLimited() {
		t.Fatalf("proactive controller not engaged on forecast alarm: %+v", ctrl.Actions())
	}
	var engaged *Action
	for i := range ctrl.Actions() {
		a := &ctrl.Actions()[i]
		if a.Switched && a.Engaged {
			engaged = a
			break
		}
	}
	if engaged == nil {
		t.Fatal("no engagement action logged")
	}
	if engaged.Class != 0 {
		t.Fatalf("engagement window classed %d — classifier fired first, forecast not the trigger", engaged.Class)
	}
	if engaged.Lead != 2 || !strings.Contains(engaged.Reason, "forecast") {
		t.Fatalf("engagement action %+v: want lead 2 and a forecast reason", engaged)
	}

	// A reactive controller over the identical stream must stay disengaged —
	// the proactive win is real lead time, not a lower threshold.
	clR := core.NewCluster(lustre.PaperTopology(), lustre.Config{})
	ctrlR := mustNew(t, clR, stubFramework(), []*lustre.Client{clR.FS.Client("c1")}, sim.Second, Config{})
	for w := 0; w < 2; w++ {
		for s := 0; s < 4; s++ {
			ctrlR.Record(readRecord(w, s))
		}
	}
	clR.Eng.RunUntil(sim.Seconds(2.5))
	if ctrlR.Engaged() {
		t.Fatal("reactive controller engaged on clean-classed windows")
	}
	ctrl.Stop()
	ctrlR.Stop()
}

// loopGen writes one file per iteration — a minimal interfering workload for
// defer tests.
type loopGen struct{}

func (loopGen) Name() string { return "bg-writes" }
func (loopGen) Ops(rank int) []workload.Op {
	path := fmt.Sprintf("/bg/rank%d", rank)
	return []workload.Op{
		{Kind: workload.Create, Path: path, StripeCount: 1},
		{Kind: workload.Write, Path: path, Size: 1 << 20},
		{Kind: workload.Close, Path: path},
	}
}
func (loopGen) Prepare(*lustre.FS) {}

// TestControllerDefersRunner exercises the defer actuation path end to end:
// hot windows pause the interfering runner at its next op boundary, clean
// windows resume it, and Stop always leaves it running free.
func TestControllerDefersRunner(t *testing.T) {
	cl := core.NewCluster(lustre.PaperTopology(), lustre.Config{})
	bg := &workload.Runner{
		FS: cl.FS, Name: "bg", Nodes: []string{"c2"}, Ranks: 1,
		Gen: loopGen{}, Loop: true,
	}
	policy, err := NewDeferBurst(WithReleaseAfter(2))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewController(cl, stubFramework(), []Victim{{Runner: bg}}, sim.Second, policy)
	if err != nil {
		t.Fatal(err)
	}
	// Windows 0-1 hot, 2+ clean.
	for w := 0; w < 2; w++ {
		for s := 0; s < 10; s++ {
			ctrl.Record(readRecord(w, s))
		}
	}
	bg.Start()
	cl.Eng.RunUntil(sim.Seconds(2.5))
	if !ctrl.Engaged() || !bg.Paused() {
		t.Fatalf("engaged=%v paused=%v after hot windows, want both", ctrl.Engaged(), bg.Paused())
	}
	cl.Eng.RunUntil(sim.Seconds(4.5))
	if ctrl.Engaged() || bg.Paused() {
		t.Fatalf("engaged=%v paused=%v after two clean windows, want neither", ctrl.Engaged(), bg.Paused())
	}
	if !bg.Running() {
		t.Fatal("background runner died across defer/resume")
	}
	// Re-engage, then Stop mid-defer: the runner must come back.
	for s := 0; s < 10; s++ {
		ctrl.Record(readRecord(5, s))
	}
	cl.Eng.RunUntil(sim.Seconds(6.5))
	if !bg.Paused() {
		t.Fatal("controller did not re-defer on a fresh hot window")
	}
	ctrl.Stop()
	if bg.Paused() {
		t.Fatal("Stop left the runner paused")
	}
	bg.Stop()
	cl.Eng.RunUntil(sim.Seconds(8))
}
