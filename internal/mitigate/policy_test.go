package mitigate

import (
	"errors"
	"testing"

	"quanterference/internal/forecast"
)

// obsAt builds an observation with the given class and an optional forecast
// lead (0 = no forecast attached).
func obsAt(window, class, lead int) Observation {
	o := Observation{Window: window, Class: class}
	if lead > 0 {
		o.Forecast = &forecast.Prediction{
			Horizons: []int{lead}, Classes: []int{1}, LeadWindows: lead,
		}
	}
	return o
}

// TestPolicyOptionValidation pins the typed-error contract of the option
// surface: negative engage classes (no sentinel exists here — 0 already
// engages always), non-positive release windows, and non-positive leads are
// all rejected with ErrInvalidConfig.
func TestPolicyOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []PolicyOption
	}{
		{"negative-engage-class", []PolicyOption{WithEngageClass(-1)}},
		{"zero-release", []PolicyOption{WithReleaseAfter(0)}},
		{"negative-release", []PolicyOption{WithReleaseAfter(-2)}},
		{"zero-lead", []PolicyOption{WithLead(0)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewReactiveThrottle(tc.opts...); !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("reactive: err %v does not match ErrInvalidConfig", err)
			}
			if _, err := NewProactiveThrottle(tc.opts...); !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("proactive: err %v does not match ErrInvalidConfig", err)
			}
			if _, err := NewDeferBurst(tc.opts...); !errors.Is(err, ErrInvalidConfig) {
				t.Fatalf("defer: err %v does not match ErrInvalidConfig", err)
			}
		})
	}
}

// TestExplicitZeroEngageClass is the regression the option migration fixes:
// WithEngageClass(0) must mean "engage on every prediction" literally, while
// omitting the option keeps the default threshold of 1 — distinguishable
// without any sentinel.
func TestExplicitZeroEngageClass(t *testing.T) {
	always, err := NewReactiveThrottle(WithEngageClass(0))
	if err != nil {
		t.Fatal(err)
	}
	if v := always.Decide(obsAt(0, 0, 0)); !v.Throttle {
		t.Fatalf("WithEngageClass(0) ignored a class-0 window: %+v", v)
	}
	def, err := NewReactiveThrottle()
	if err != nil {
		t.Fatal(err)
	}
	if v := def.Decide(obsAt(0, 0, 0)); v.Throttle {
		t.Fatalf("default policy engaged on a clean window: %+v", v)
	}
	if v := def.Decide(obsAt(1, 1, 0)); !v.Throttle {
		t.Fatalf("default policy ignored a class-1 window: %+v", v)
	}
}

// TestHysteresisFlicker pins the engage-then-immediately-clean edge: a hot
// window mid-cooldown restarts the cooldown from scratch, so a flickering
// predictor (hot, clean, hot, clean, ...) with ReleaseAfter 2 never releases.
func TestHysteresisFlicker(t *testing.T) {
	p, err := NewReactiveThrottle(WithReleaseAfter(2))
	if err != nil {
		t.Fatal(err)
	}
	seq := []int{1, 0, 1, 0, 1} // flicker, ending on a hot window
	for w, class := range seq {
		if v := p.Decide(obsAt(w, class, 0)); !v.Throttle {
			t.Fatalf("window %d (class %d): released mid-flicker: %+v", w, class, v)
		}
	}
	// Two genuinely clean windows release it.
	if v := p.Decide(obsAt(5, 0, 0)); !v.Throttle {
		t.Fatal("released after one clean window")
	}
	if v := p.Decide(obsAt(6, 0, 0)); v.Throttle {
		t.Fatal("still engaged after two clean windows")
	}
}

// TestProactiveEngagesOnForecast pins the lead semantics: an alarm within
// Lead windows engages before any hot window arrives, an alarm beyond Lead
// is ignored until it gets closer, and a nil forecast degrades the policy to
// reactive behavior.
func TestProactiveEngagesOnForecast(t *testing.T) {
	p, err := NewProactiveThrottle(WithLead(2))
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Decide(obsAt(0, 0, 4)); v.Throttle {
		t.Fatalf("engaged on an alarm 4 windows out with lead 2: %+v", v)
	}
	if v := p.Decide(obsAt(1, 0, 2)); !v.Throttle {
		t.Fatalf("ignored an alarm 2 windows out with lead 2: %+v", v)
	}
	p.Reset()
	if v := p.Decide(obsAt(0, 0, 0)); v.Throttle {
		t.Fatal("engaged with no forecast and a clean window")
	}
	if v := p.Decide(obsAt(1, 1, 0)); !v.Throttle {
		t.Fatal("nil-forecast proactive did not degrade to reactive")
	}
}

// TestForecastLeadShorterThanRelease pins the interaction the issue calls
// out: with ReleaseAfter 3 and a single-window forecast alarm, the
// engagement outlives the alarm by exactly ReleaseAfter clean windows — the
// alarm (lead 1) being shorter than the release cooldown must not cut the
// cooldown short.
func TestForecastLeadShorterThanRelease(t *testing.T) {
	p, err := NewProactiveThrottle(WithLead(4), WithReleaseAfter(3))
	if err != nil {
		t.Fatal(err)
	}
	if v := p.Decide(obsAt(0, 0, 1)); !v.Throttle {
		t.Fatal("alarm 1 window out did not engage")
	}
	// The alarm clears immediately; three clean windows are still required.
	for w := 1; w <= 2; w++ {
		if v := p.Decide(obsAt(w, 0, 0)); !v.Throttle {
			t.Fatalf("window %d: released after %d clean window(s), want 3", w, w)
		}
	}
	if v := p.Decide(obsAt(3, 0, 0)); v.Throttle {
		t.Fatal("still engaged after 3 clean windows")
	}
}

// TestEngageAlwaysWithProactive pins the sentinel × proactive interaction:
// an engage class of 0 (the option spelling of the legacy EngageAlways)
// makes every window hot, so the forecast can never be the deciding signal
// and the policy is permanently engaged — deliberately, not by accident.
func TestEngageAlwaysWithProactive(t *testing.T) {
	p, err := NewProactiveThrottle(WithEngageClass(0), WithLead(1))
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		v := p.Decide(obsAt(w, 0, 0))
		if !v.Throttle {
			t.Fatalf("window %d: engage-class-0 proactive released: %+v", w, v)
		}
		if v.Reason != "class 0 >= 0" {
			t.Fatalf("window %d: reason %q, want the class trigger to dominate", w, v.Reason)
		}
	}
}

// TestDeferVerdicts pins that DeferBurst asks for defers, never throttles,
// and shares the proactive trigger.
func TestDeferVerdicts(t *testing.T) {
	p, err := NewDeferBurst(WithLead(2))
	if err != nil {
		t.Fatal(err)
	}
	v := p.Decide(obsAt(0, 0, 2))
	if !v.Defer || v.Throttle {
		t.Fatalf("forecast alarm: want pure defer, got %+v", v)
	}
	if !v.Engaged() {
		t.Fatal("defer verdict not Engaged()")
	}
	v = p.Decide(obsAt(1, 1, 0))
	if !v.Defer || v.Throttle {
		t.Fatalf("hot window: want pure defer, got %+v", v)
	}
}

// TestPolicyDeterminism replays the same observation sequence through fresh
// and Reset policies and demands identical verdict sequences — the
// per-policy statement of the package determinism contract.
func TestPolicyDeterminism(t *testing.T) {
	seq := []Observation{
		obsAt(0, 0, 0), obsAt(1, 0, 3), obsAt(2, 1, 1), obsAt(3, 0, 0),
		obsAt(4, 0, 0), obsAt(5, 2, 0), obsAt(6, 0, 4), obsAt(7, 0, 0),
	}
	mk := func() []Policy {
		r, _ := NewReactiveThrottle()
		p, _ := NewProactiveThrottle(WithLead(3))
		d, _ := NewDeferBurst(WithLead(3))
		return []Policy{r, p, d}
	}
	run := func(p Policy) []Verdict {
		out := make([]Verdict, len(seq))
		for i, o := range seq {
			out[i] = p.Decide(o)
		}
		return out
	}
	fresh1, fresh2 := mk(), mk()
	for i := range fresh1 {
		v1, v2 := run(fresh1[i]), run(fresh2[i])
		for j := range v1 {
			if v1[j] != v2[j] {
				t.Fatalf("%s: fresh replays diverged at obs %d: %+v vs %+v",
					fresh1[i].Name(), j, v1[j], v2[j])
			}
		}
		fresh1[i].Reset()
		v3 := run(fresh1[i])
		for j := range v1 {
			if v1[j] != v3[j] {
				t.Fatalf("%s: Reset replay diverged at obs %d: %+v vs %+v",
					fresh1[i].Name(), j, v1[j], v3[j])
			}
		}
	}
}
