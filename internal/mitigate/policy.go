package mitigate

import (
	"fmt"

	"quanterference/internal/forecast"
	"quanterference/internal/sim"
)

// Observation is what a policy sees once per monitoring window: the
// classifier's verdict on the window that just closed, plus — when a
// forecaster is wired in — the sequence head's view of the windows ahead.
// Observations are per protected client, DIAL-style: they are assembled from
// that client's own window stream (its client-side monitor joined with the
// server-side samples), so a policy needs no global coordinator to decide.
//
// The zero Observation is a clean window at t=0 with no forecast; policies
// treat it as "no degradation anywhere in sight".
type Observation struct {
	// At is the simulated time of the window boundary.
	At sim.Time
	// Window is the window index in the stream (0-based).
	Window int
	// Class is the predicted slowdown class of the window that just closed
	// (the paper's classifier output; 0 = no degradation).
	Class int
	// Forecast is the sequence head's prediction from the history up to and
	// including this window. Nil when no forecaster is attached or its
	// history is not yet warm; policies must tolerate nil and fall back to
	// Class alone.
	Forecast *forecast.Prediction
}

// Verdict is the actuation state a policy wants after an observation:
// whether the interfering clients should be rate-limited (token-bucket
// throttle, NRS-TBF style) and/or have their next bursts held back
// (defer/reschedule). The zero Verdict means "leave everyone alone".
type Verdict struct {
	// Throttle asks for per-client rate limits on the interfering clients.
	Throttle bool
	// Defer asks for the interfering clients' next bursts to be held until
	// a later verdict clears it.
	Defer bool
	// Reason is a compact, deterministic explanation ("class 1 >= 1",
	// "forecast lead 2 <= 4", "clean 2/2") for logs and audit trails.
	Reason string
}

// Engaged reports whether the verdict actuates anything at all.
func (v Verdict) Engaged() bool { return v.Throttle || v.Defer }

// Policy turns a stream of per-window observations into actuation verdicts.
// Policies are deterministic state machines: the same observation sequence
// always produces the same verdict sequence (no clocks, no randomness), so
// same-seed simulation runs replay decision-for-decision — the property the
// MitigationStudy golden pins.
//
// Policies are stateful (hysteresis counters) and single-goroutine, like the
// Forecaster and Framework they consume. Use one policy instance per stream;
// Reset rewinds it for a new stream.
type Policy interface {
	// Name identifies the policy in logs, CSVs, and metrics.
	Name() string
	// Decide consumes one observation and returns the desired state.
	Decide(obs Observation) Verdict
	// Reset clears hysteresis state for a fresh stream.
	Reset()
}

// policyParams carries the pointer-default option state: nil means "use the
// policy's default", a pointer means "the caller said exactly this" — so an
// explicit 0 is distinguishable from unset without any sentinel value (the
// fix for the Config.EngageClass/EngageAlways conflation; the sentinel now
// survives only on the legacy Config surface).
type policyParams struct {
	engageClass  *int
	releaseAfter *int
	lead         *int
}

// PolicyOption tunes a policy constructor. Options exist so a zero value
// ("use the default") is distinguishable from an explicit setting:
// WithEngageClass(0) literally means "engage on every prediction, class 0
// included" — no EngageAlways sentinel needed.
type PolicyOption func(*policyParams)

// WithEngageClass sets the minimum predicted slowdown class that counts as
// "hot" (default 1, the paper's >=2x bin). 0 engages on every prediction —
// the behaviour the legacy Config could only request via the EngageAlways
// sentinel. Negative classes are rejected at construction time with an error
// wrapping ErrInvalidConfig.
func WithEngageClass(class int) PolicyOption {
	return func(p *policyParams) { c := class; p.engageClass = &c }
}

// WithReleaseAfter sets how many consecutive clean observations end an
// engagement (default 2 — hysteresis against prediction flicker). 1 releases
// on the first clean window; 0 and negatives are rejected with an error
// wrapping ErrInvalidConfig.
func WithReleaseAfter(windows int) PolicyOption {
	return func(p *policyParams) { w := windows; p.releaseAfter = &w }
}

// WithLead sets how far ahead a forecast alarm may be and still trigger
// engagement, in windows (default 4, the stock forecaster's longest
// horizon). Only the proactive and defer policies read it; a forecast
// predicting degradation in more than lead windows is ignored until it gets
// closer. Non-positive leads are rejected with an error wrapping
// ErrInvalidConfig.
func WithLead(windows int) PolicyOption {
	return func(p *policyParams) { w := windows; p.lead = &w }
}

// resolve applies defaults and validates. The defaults mirror the legacy
// Config: engage class 1, release after 2 clean windows, lead 4.
func resolvePolicyParams(opts []PolicyOption) (engageClass, releaseAfter, lead int, err error) {
	var p policyParams
	for _, fn := range opts {
		if fn != nil {
			fn(&p)
		}
	}
	engageClass, releaseAfter, lead = 1, 2, 4
	if p.engageClass != nil {
		engageClass = *p.engageClass
	}
	if p.releaseAfter != nil {
		releaseAfter = *p.releaseAfter
	}
	if p.lead != nil {
		lead = *p.lead
	}
	if engageClass < 0 {
		return 0, 0, 0, fmt.Errorf("%w: negative engage class %d (0 already engages on every prediction)",
			ErrInvalidConfig, engageClass)
	}
	if releaseAfter < 1 {
		return 0, 0, 0, fmt.Errorf("%w: release-after %d (want >= 1 clean window)",
			ErrInvalidConfig, releaseAfter)
	}
	if lead < 1 {
		return 0, 0, 0, fmt.Errorf("%w: forecast lead %d (want >= 1 window)", ErrInvalidConfig, lead)
	}
	return engageClass, releaseAfter, lead, nil
}

// hysteresis is the shared engage/release state machine: any hot observation
// (re)engages immediately and zeroes the clean count; releasing needs
// releaseAfter consecutive clean observations. A hot window mid-cooldown
// restarts the cooldown from scratch — the "engage-then-immediately-clean
// flicker" edge the tests pin.
type hysteresis struct {
	releaseAfter int
	engaged      bool
	clean        int
}

// step consumes one observation's hot/clean bit and reports the engaged
// state after it, plus whether this step switched state.
func (h *hysteresis) step(hot bool) (engaged, switched bool) {
	if hot {
		h.clean = 0
		if !h.engaged {
			h.engaged = true
			return true, true
		}
		return true, false
	}
	if h.engaged {
		h.clean++
		if h.clean >= h.releaseAfter {
			h.engaged = false
			h.clean = 0
			return false, true
		}
	}
	return h.engaged, false
}

func (h *hysteresis) reset() { h.engaged = false; h.clean = 0 }

// ReactiveThrottle is the classic threshold-on-prediction policy — the
// pre-policy Controller behaviour under the Policy interface: throttle while
// the current window's predicted class reaches the engage class, release
// after ReleaseAfter consecutive clean windows. It ignores forecasts
// entirely, which makes it the baseline every forecast-driven policy is
// measured against in the MitigationStudy.
type ReactiveThrottle struct {
	engageClass int
	hyst        hysteresis
}

// NewReactiveThrottle builds the policy from options (defaults: engage class
// 1, release after 2). Invalid options return an error wrapping
// ErrInvalidConfig.
func NewReactiveThrottle(opts ...PolicyOption) (*ReactiveThrottle, error) {
	engage, release, _, err := resolvePolicyParams(opts)
	if err != nil {
		return nil, err
	}
	return &ReactiveThrottle{engageClass: engage, hyst: hysteresis{releaseAfter: release}}, nil
}

// Name implements Policy.
func (p *ReactiveThrottle) Name() string { return "reactive" }

// Reset implements Policy.
func (p *ReactiveThrottle) Reset() { p.hyst.reset() }

// Decide throttles on current-window class alone.
func (p *ReactiveThrottle) Decide(obs Observation) Verdict {
	hot := obs.Class >= p.engageClass
	engaged, _ := p.hyst.step(hot)
	return Verdict{Throttle: engaged, Reason: p.reason(obs, hot, engaged)}
}

func (p *ReactiveThrottle) reason(obs Observation, hot, engaged bool) string {
	switch {
	case hot:
		return fmt.Sprintf("class %d >= %d", obs.Class, p.engageClass)
	case engaged:
		return fmt.Sprintf("cooldown %d/%d", p.hyst.clean, p.hyst.releaseAfter)
	default:
		return "clean"
	}
}

// ProactiveThrottle is the forecast-driven throttle: it engages when the
// current window is already hot (so it is never later than ReactiveThrottle)
// OR when the forecaster predicts degradation within Lead windows — engaging
// up to Lead windows before the degraded window arrives, so the rate limits
// are already in force when the burst lands. Release needs ReleaseAfter
// consecutive observations that are clean on both signals: a clean current
// window with a degrading forecast keeps the throttle on (hysteresis over
// the union).
//
// Without a forecaster (Observation.Forecast nil) it degrades gracefully to
// exactly ReactiveThrottle.
type ProactiveThrottle struct {
	engageClass int
	lead        int
	hyst        hysteresis
}

// NewProactiveThrottle builds the policy from options (defaults: engage
// class 1, release after 2, lead 4). Invalid options return an error
// wrapping ErrInvalidConfig.
func NewProactiveThrottle(opts ...PolicyOption) (*ProactiveThrottle, error) {
	engage, release, lead, err := resolvePolicyParams(opts)
	if err != nil {
		return nil, err
	}
	return &ProactiveThrottle{engageClass: engage, lead: lead, hyst: hysteresis{releaseAfter: release}}, nil
}

// Name implements Policy.
func (p *ProactiveThrottle) Name() string { return "proactive" }

// Reset implements Policy.
func (p *ProactiveThrottle) Reset() { p.hyst.reset() }

// forecastHot reports whether the forecast alarms within the policy's lead.
func forecastHot(obs Observation, lead int) bool {
	return obs.Forecast != nil && obs.Forecast.Degrading() && obs.Forecast.LeadWindows <= lead
}

// Decide throttles on current class or near-enough forecast alarms.
func (p *ProactiveThrottle) Decide(obs Observation) Verdict {
	nowHot := obs.Class >= p.engageClass
	aheadHot := forecastHot(obs, p.lead)
	engaged, _ := p.hyst.step(nowHot || aheadHot)
	reason := "clean"
	switch {
	case nowHot:
		reason = fmt.Sprintf("class %d >= %d", obs.Class, p.engageClass)
	case aheadHot:
		reason = fmt.Sprintf("forecast lead %d <= %d", obs.Forecast.LeadWindows, p.lead)
	case engaged:
		reason = fmt.Sprintf("cooldown %d/%d", p.hyst.clean, p.hyst.releaseAfter)
	}
	return Verdict{Throttle: engaged, Reason: reason}
}

// DeferBurst is the defer/reschedule policy: instead of rate-limiting, it
// holds the interfering clients' next bursts entirely while a hot window is
// predicted or in progress, releasing the queued work once forecasts come
// back clean for ReleaseAfter consecutive windows — the predicted-hot window
// passes with the protected application running alone, and the interfering
// work resumes afterwards instead of trickling through a throttle. The
// engage trigger is the same union as ProactiveThrottle's (current class or
// forecast alarm within Lead), so it also works — reactively — without a
// forecaster.
type DeferBurst struct {
	engageClass int
	lead        int
	hyst        hysteresis
}

// NewDeferBurst builds the policy from options (defaults: engage class 1,
// release after 2, lead 4). Invalid options return an error wrapping
// ErrInvalidConfig.
func NewDeferBurst(opts ...PolicyOption) (*DeferBurst, error) {
	engage, release, lead, err := resolvePolicyParams(opts)
	if err != nil {
		return nil, err
	}
	return &DeferBurst{engageClass: engage, lead: lead, hyst: hysteresis{releaseAfter: release}}, nil
}

// Name implements Policy.
func (p *DeferBurst) Name() string { return "defer" }

// Reset implements Policy.
func (p *DeferBurst) Reset() { p.hyst.reset() }

// Decide defers on current class or near-enough forecast alarms.
func (p *DeferBurst) Decide(obs Observation) Verdict {
	nowHot := obs.Class >= p.engageClass
	aheadHot := forecastHot(obs, p.lead)
	engaged, _ := p.hyst.step(nowHot || aheadHot)
	reason := "clean"
	switch {
	case nowHot:
		reason = fmt.Sprintf("class %d >= %d", obs.Class, p.engageClass)
	case aheadHot:
		reason = fmt.Sprintf("forecast lead %d <= %d", obs.Forecast.LeadWindows, p.lead)
	case engaged:
		reason = fmt.Sprintf("cooldown %d/%d", p.hyst.clean, p.hyst.releaseAfter)
	}
	return Verdict{Defer: engaged, Reason: reason}
}
