// Package mitigate closes the loop the paper motivates: its conclusion
// positions quantitative interference prediction as the missing input for
// "more effective I/O interference mitigation strategies". This package is
// one such strategy — a controller that watches the online predictor and,
// when the model says the protected application's I/O is degraded by at
// least the engage class, applies token-bucket rate limits (NRS-TBF style,
// the paper's reference [13]) to the interfering clients; when predictions
// stay clean it releases them.
package mitigate

import (
	"errors"
	"fmt"
	"strings"

	"quanterference/internal/core"
	"quanterference/internal/lustre"
	"quanterference/internal/monitor/window"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

// EngageAlways makes the controller throttle on every prediction, including
// class 0 ("no degradation"). The zero value of Config.EngageClass means
// "use the default" (class 1), so requesting class 0 needs this explicit
// sentinel.
const EngageAlways = -1

// ErrInvalidConfig reports a Config that New refuses to run with — the
// mitigation sibling of core.ErrInvalidScenario. Match with errors.Is; the
// returned error wraps it with the offending field.
var ErrInvalidConfig = errors.New("mitigate: invalid config")

// Config tunes the controller.
type Config struct {
	// EngageClass is the minimum predicted class that triggers throttling
	// (default 1: any >=2x prediction). Set EngageAlways (-1) to engage on
	// class 0 too — the zero value is reserved for "default".
	EngageClass int
	// ThrottleBps is the per-client rate limit applied while engaged
	// (default 10 MB/s).
	ThrottleBps float64
	// ReleaseAfter is how many consecutive clean windows end throttling
	// (default 2, hysteresis against prediction flicker).
	ReleaseAfter int
}

// validate rejects field values that defaulting used to paper over: only
// EngageAlways (-1) is a legal negative EngageClass — a typo'd -5 used to be
// silently rewritten to class 0, turning the controller into an
// always-throttle one nobody asked for.
func (c *Config) validate() error {
	if c.EngageClass < EngageAlways {
		return fmt.Errorf("%w: EngageClass %d (want a class >= 0, 0 for the default, or EngageAlways)",
			ErrInvalidConfig, c.EngageClass)
	}
	if c.ThrottleBps < 0 {
		return fmt.Errorf("%w: negative ThrottleBps %g", ErrInvalidConfig, c.ThrottleBps)
	}
	if c.ReleaseAfter < 0 {
		return fmt.Errorf("%w: negative ReleaseAfter %d", ErrInvalidConfig, c.ReleaseAfter)
	}
	return nil
}

func (c *Config) applyDefaults() {
	switch c.EngageClass {
	case 0:
		c.EngageClass = 1
	case EngageAlways:
		c.EngageClass = 0
	}
	if c.ThrottleBps == 0 {
		c.ThrottleBps = 10e6
	}
	if c.ReleaseAfter == 0 {
		c.ReleaseAfter = 2
	}
}

// Action is one controller decision, for audit.
type Action struct {
	At       sim.Time
	Window   int
	Class    int
	Engaged  bool // state after the decision
	Switched bool // whether this decision changed the state
}

// Controller drives rate limits from per-window predictions.
type Controller struct {
	cfg     Config
	fw      *core.Framework
	victims []*lustre.Client

	engaged bool
	clean   int
	actions []Action
	mon     *core.LiveMonitor
}

// New attaches a controller to a live cluster. fw is the trained framework;
// record must be wired into the protected workload's Runner.OnRecord (use
// Record below); victims are the clients to throttle when interference is
// predicted to hurt the protected application. A Config that names an
// impossible engage class (any negative other than EngageAlways) or negative
// rates returns an error wrapping ErrInvalidConfig.
func New(cl *core.Cluster, fw *core.Framework, victims []*lustre.Client, windowSize sim.Time, cfg Config) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	c := &Controller{cfg: cfg, fw: fw, victims: victims}
	c.mon = core.AttachLive(cl, windowSize, func(idx int, mat window.Matrix) {
		class, _ := fw.Predict(mat)
		c.decide(cl.Eng.Now(), idx, class)
	})
	return c, nil
}

// Record is the client-monitor hook for the protected workload.
func (c *Controller) Record(rec workload.Record) { c.mon.Record(rec) }

// decide applies the hysteresis policy.
func (c *Controller) decide(now sim.Time, windowIdx, class int) {
	switched := false
	if class >= c.cfg.EngageClass {
		c.clean = 0
		if !c.engaged {
			c.engaged = true
			switched = true
			for _, v := range c.victims {
				v.SetRateLimit(c.cfg.ThrottleBps)
			}
		}
	} else if c.engaged {
		c.clean++
		if c.clean >= c.cfg.ReleaseAfter {
			c.engaged = false
			switched = true
			for _, v := range c.victims {
				v.SetRateLimit(0)
			}
		}
	}
	c.actions = append(c.actions, Action{
		At: now, Window: windowIdx, Class: class,
		Engaged: c.engaged, Switched: switched,
	})
}

// Engaged reports whether throttling is currently applied.
func (c *Controller) Engaged() bool { return c.engaged }

// Actions returns the decision log.
func (c *Controller) Actions() []Action { return c.actions }

// Stop detaches the controller and removes any active limits.
func (c *Controller) Stop() {
	c.mon.Stop()
	if c.engaged {
		c.engaged = false
		for _, v := range c.victims {
			v.SetRateLimit(0)
		}
	}
}

// Summary renders the decision log compactly.
func (c *Controller) Summary() string {
	var b strings.Builder
	engagements := 0
	for _, a := range c.actions {
		if a.Switched && a.Engaged {
			engagements++
		}
	}
	fmt.Fprintf(&b, "%d windows judged, %d engagements, currently engaged=%v\n",
		len(c.actions), engagements, c.engaged)
	return b.String()
}
