// Package mitigate closes the loop the paper motivates: its conclusion
// positions quantitative interference prediction as the missing input for
// "more effective I/O interference mitigation strategies". The package is a
// policy-driven actuation subsystem: a Controller watches the protected
// application's own window stream (per-client local metrics, DIAL-style —
// no global coordinator), feeds each window through the online classifier
// and, optionally, the forecast sequence head, and hands the resulting
// Observation to a pluggable Policy. The Policy's Verdict is then actuated
// on the interfering clients: token-bucket rate limits (NRS-TBF style, the
// paper's reference [13]) and/or deferring their next bursts until the
// predicted-hot window has passed.
//
// Three policies ship: ReactiveThrottle (threshold on the current window's
// prediction — the pre-policy behaviour), ProactiveThrottle (engages up to
// Lead windows before predicted degradation, using forecast.Prediction), and
// DeferBurst (pauses the interfering clients' bursts instead of throttling
// them). experiments.MitigationStudy measures each against a no-action
// baseline across a fault × workload scenario matrix.
//
// Determinism contract: policies are pure state machines over their
// observation sequence and the Controller runs entirely inside the
// simulator's single-threaded event loop, so same-seed runs produce
// bit-identical decision logs, engagement counts, and measured outcomes.
package mitigate

import (
	"errors"
	"fmt"
	"strings"

	"quanterference/internal/core"
	"quanterference/internal/forecast"
	"quanterference/internal/lustre"
	"quanterference/internal/monitor/window"
	"quanterference/internal/obs"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

// EngageAlways makes the legacy Config throttle on every prediction,
// including class 0 ("no degradation"). The zero value of Config.EngageClass
// means "use the default" (class 1), so requesting class 0 through Config
// needs this explicit sentinel. The sentinel lives only on this legacy
// surface: the option-based policy constructors take WithEngageClass(0)
// literally, no sentinel required.
const EngageAlways = -1

// ErrInvalidConfig reports a Config or PolicyOption set that the
// constructors refuse to run with — the mitigation sibling of
// core.ErrInvalidScenario. Match with errors.Is; the returned error wraps it
// with the offending field.
var ErrInvalidConfig = errors.New("mitigate: invalid config")

// Config is the legacy knob surface for the reactive throttle, kept for
// callers that predate the Policy interface. New code should construct a
// policy (NewReactiveThrottle and friends) and use NewController, where an
// explicit engage class 0 needs no sentinel. The zero Config is usable:
// every field defaults.
type Config struct {
	// EngageClass is the minimum predicted class that triggers throttling
	// (default 1: any >=2x prediction). Set EngageAlways (-1) to engage on
	// class 0 too — the zero value is reserved for "default".
	EngageClass int
	// ThrottleBps is the per-client rate limit applied while engaged
	// (default 10 MB/s).
	ThrottleBps float64
	// ReleaseAfter is how many consecutive clean windows end throttling
	// (default 2, hysteresis against prediction flicker).
	ReleaseAfter int
}

// validate rejects field values that defaulting used to paper over: only
// EngageAlways (-1) is a legal negative EngageClass — a typo'd -5 used to be
// silently rewritten to class 0, turning the controller into an
// always-throttle one nobody asked for.
func (c *Config) validate() error {
	if c.EngageClass < EngageAlways {
		return fmt.Errorf("%w: EngageClass %d (want a class >= 0, 0 for the default, or EngageAlways)",
			ErrInvalidConfig, c.EngageClass)
	}
	if c.ThrottleBps < 0 {
		return fmt.Errorf("%w: negative ThrottleBps %g", ErrInvalidConfig, c.ThrottleBps)
	}
	if c.ReleaseAfter < 0 {
		return fmt.Errorf("%w: negative ReleaseAfter %d", ErrInvalidConfig, c.ReleaseAfter)
	}
	return nil
}

// applyDefaults resolves zero values and the EngageAlways sentinel into
// concrete knobs. This is the only place the sentinel is interpreted: the
// option-based constructors take explicit values (WithEngageClass(0) means
// class 0, no dance). Kept on the legacy Config surface for compatibility.
func (c *Config) applyDefaults() {
	switch {
	case c.EngageClass == 0:
		c.EngageClass = 1
	case c.EngageClass == EngageAlways:
		c.EngageClass = 0
	}
	if c.ThrottleBps == 0 {
		c.ThrottleBps = 10e6
	}
	if c.ReleaseAfter == 0 {
		c.ReleaseAfter = 2
	}
}

// Victim is one interfering client the controller can actuate on: Client
// receives token-bucket rate limits when a verdict asks to throttle; Runner,
// when non-nil, is paused/resumed when a verdict asks to defer bursts. A
// Victim with a nil Runner simply cannot be deferred (throttle verdicts
// still apply), and vice versa.
type Victim struct {
	Client *lustre.Client
	Runner *workload.Runner
}

// Action is one controller decision, for audit. Actions record the state
// after the decision, so the log replays the controller's exact trajectory.
type Action struct {
	At     sim.Time
	Window int
	// Class is the classifier's verdict on the closed window; Lead the
	// forecaster's predicted time-to-degradation at that point (0 = no
	// forecaster, not warm, or nothing predicted).
	Class int
	Lead  int
	// Engaged is the policy state after the decision (throttle or defer
	// active); Deferred distinguishes a defer engagement from a throttle.
	Engaged  bool
	Deferred bool
	// Switched reports whether this decision changed the actuation state.
	Switched bool
	// Reason is the policy's deterministic explanation.
	Reason string
}

// Controller drives actuation from per-window predictions. It is built on a
// live cluster, runs inside the simulator's event loop (single-goroutine,
// like the Framework and Forecaster it drives), and is deterministic: same
// seed, same decision log.
type Controller struct {
	policy      Policy
	fw          *core.Framework
	victims     []Victim
	throttleBps float64
	tracker     *forecast.Tracker // nil without WithForecaster

	throttled bool
	deferred  bool
	actions   []Action
	mon       *core.LiveMonitor

	mWindows     *obs.Counter
	mEngagements *obs.Counter
	mReleases    *obs.Counter
	mThrottledW  *obs.Counter
	mDeferredW   *obs.Counter
	mBytesDefer  *obs.Counter
	gEngaged     *obs.Gauge
}

// ctrlParams is the pointer-default option state for NewController.
type ctrlParams struct {
	throttleBps *float64
	forecaster  *forecast.Forecaster
	sink        *obs.Sink
}

// ControllerOption tunes NewController.
type ControllerOption func(*ctrlParams)

// WithThrottleBps sets the per-client rate limit applied while a throttle
// verdict is in force (default 10 MB/s). Negative rates are rejected with an
// error wrapping ErrInvalidConfig.
func WithThrottleBps(bps float64) ControllerOption {
	return func(p *ctrlParams) { b := bps; p.throttleBps = &b }
}

// WithForecaster feeds every monitored window through a sliding-history
// tracker over f, so each Observation carries the forecast alongside the
// current-window class — what the proactive and defer policies act on. The
// controller owns f's scratch (single-goroutine); clone before sharing one
// with a serving layer.
func WithForecaster(f *forecast.Forecaster) ControllerOption {
	return func(p *ctrlParams) { p.forecaster = f }
}

// WithSink registers the controller's metrics on s: counters
// mitigate/{windows,engagements,releases,windows_throttled,windows_deferred,
// bytes_deferred} and the mitigate/engaged gauge. Without it a private sink
// is used, so the counters always work.
func WithSink(s *obs.Sink) ControllerOption {
	return func(p *ctrlParams) { p.sink = s }
}

// NewController attaches a policy-driven controller to a live cluster. fw is
// the trained framework judging each window; policy decides; victims are
// actuated on. Wire Record into the protected workload's Runner.OnRecord.
// Invalid options return an error wrapping ErrInvalidConfig.
func NewController(cl *core.Cluster, fw *core.Framework, victims []Victim, windowSize sim.Time, policy Policy, opts ...ControllerOption) (*Controller, error) {
	if policy == nil {
		return nil, fmt.Errorf("%w: nil policy", ErrInvalidConfig)
	}
	var p ctrlParams
	for _, fn := range opts {
		if fn != nil {
			fn(&p)
		}
	}
	throttleBps := 10e6
	if p.throttleBps != nil {
		throttleBps = *p.throttleBps
	}
	if throttleBps < 0 {
		return nil, fmt.Errorf("%w: negative ThrottleBps %g", ErrInvalidConfig, throttleBps)
	}
	sink := p.sink
	if sink == nil {
		sink = obs.New()
	}
	c := &Controller{
		policy:      policy,
		fw:          fw,
		victims:     victims,
		throttleBps: throttleBps,

		mWindows:     sink.Counter("mitigate", "", "windows"),
		mEngagements: sink.Counter("mitigate", "", "engagements"),
		mReleases:    sink.Counter("mitigate", "", "releases"),
		mThrottledW:  sink.Counter("mitigate", "", "windows_throttled"),
		mDeferredW:   sink.Counter("mitigate", "", "windows_deferred"),
		mBytesDefer:  sink.Counter("mitigate", "", "bytes_deferred"),
		gEngaged:     sink.Gauge("mitigate", "", "engaged"),
	}
	if p.forecaster != nil {
		c.tracker = forecast.NewTracker(p.forecaster)
	}
	c.mon = core.AttachLive(cl, windowSize, func(idx int, mat window.Matrix) {
		c.onWindow(cl.Eng.Now(), idx, mat)
	})
	return c, nil
}

// New attaches the legacy reactive-throttle controller — Config's sentinel
// surface over NewController with a ReactiveThrottle policy. fw is the
// trained framework; record must be wired into the protected workload's
// Runner.OnRecord (use Record below); victims are the clients to throttle
// when interference is predicted to hurt the protected application. A Config
// that names an impossible engage class (any negative other than
// EngageAlways) or negative rates returns an error wrapping
// ErrInvalidConfig.
func New(cl *core.Cluster, fw *core.Framework, victims []*lustre.Client, windowSize sim.Time, cfg Config) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	policy, err := NewReactiveThrottle(
		WithEngageClass(cfg.EngageClass), WithReleaseAfter(cfg.ReleaseAfter))
	if err != nil {
		return nil, err
	}
	vs := make([]Victim, len(victims))
	for i, vc := range victims {
		vs[i] = Victim{Client: vc}
	}
	return NewController(cl, fw, vs, windowSize, policy, WithThrottleBps(cfg.ThrottleBps))
}

// Record is the client-monitor hook for the protected workload.
func (c *Controller) Record(rec workload.Record) { c.mon.Record(rec) }

// onWindow classifies and forecasts the closed window, asks the policy, and
// actuates the verdict. The tracker is offered the window before predicting,
// so the forecast history includes the window the classifier just judged —
// the same ordering online.Loop uses, keeping decisions comparable.
func (c *Controller) onWindow(now sim.Time, idx int, mat window.Matrix) {
	c.mWindows.Inc()
	class, _ := c.fw.Predict(mat)
	var fcast *forecast.Prediction
	if c.tracker != nil {
		c.tracker.Offer(mat)
		if c.tracker.Ready() {
			if p, err := c.tracker.Predict(); err == nil {
				fcast = p
			}
		}
	}
	v := c.policy.Decide(Observation{At: now, Window: idx, Class: class, Forecast: fcast})
	c.apply(now, idx, class, fcast, v)
}

// decide runs one policy decision outside the monitor path — the
// forecast-free core of onWindow, kept separable so tests can drive the
// actuation state machine directly.
func (c *Controller) decide(now sim.Time, idx, class int) {
	v := c.policy.Decide(Observation{At: now, Window: idx, Class: class})
	c.apply(now, idx, class, nil, v)
}

// apply transitions throttle and defer state to the verdict's.
func (c *Controller) apply(now sim.Time, idx, class int, fcast *forecast.Prediction, v Verdict) {
	switched := false
	if v.Throttle != c.throttled {
		c.throttled = v.Throttle
		switched = true
		bps := 0.0
		if v.Throttle {
			bps = c.throttleBps
		}
		for _, vic := range c.victims {
			if vic.Client != nil {
				vic.Client.SetRateLimit(bps)
			}
		}
	}
	if v.Defer != c.deferred {
		c.deferred = v.Defer
		switched = true
		for _, vic := range c.victims {
			if vic.Runner == nil {
				continue
			}
			if v.Defer {
				vic.Runner.Pause()
			} else {
				c.mBytesDefer.Add(uint64(vic.Runner.HeldBytes()))
				vic.Runner.Resume()
			}
		}
	}
	engaged := c.throttled || c.deferred
	if switched {
		if engaged {
			c.mEngagements.Inc()
		} else {
			c.mReleases.Inc()
		}
	}
	if c.throttled {
		c.mThrottledW.Inc()
	}
	if c.deferred {
		c.mDeferredW.Inc()
	}
	if engaged {
		c.gEngaged.Set(1)
	} else {
		c.gEngaged.Set(0)
	}
	lead := 0
	if fcast != nil {
		lead = fcast.LeadWindows
	}
	c.actions = append(c.actions, Action{
		At: now, Window: idx, Class: class, Lead: lead,
		Engaged: engaged, Deferred: c.deferred, Switched: switched, Reason: v.Reason,
	})
}

// Engaged reports whether any actuation (throttle or defer) is currently
// applied.
func (c *Controller) Engaged() bool { return c.throttled || c.deferred }

// Actions returns the decision log, one entry per monitored window.
func (c *Controller) Actions() []Action { return c.actions }

// Engagements counts idle-to-engaged transitions in the decision log.
func (c *Controller) Engagements() int {
	n := 0
	for _, a := range c.actions {
		if a.Switched && a.Engaged {
			n++
		}
	}
	return n
}

// ThrottledWindows counts windows that closed with the throttle in force.
func (c *Controller) ThrottledWindows() int { return int(c.mThrottledW.Value()) }

// BytesDeferred is the total I/O volume held at pause gates across defer
// engagements (accumulated at each release).
func (c *Controller) BytesDeferred() int64 { return int64(c.mBytesDefer.Value()) }

// Stop detaches the controller and removes any active limits or holds, so
// the victims run free afterwards.
func (c *Controller) Stop() {
	c.mon.Stop()
	if c.throttled {
		c.throttled = false
		for _, vic := range c.victims {
			if vic.Client != nil {
				vic.Client.SetRateLimit(0)
			}
		}
	}
	if c.deferred {
		c.deferred = false
		for _, vic := range c.victims {
			if vic.Runner != nil {
				c.mBytesDefer.Add(uint64(vic.Runner.HeldBytes()))
				vic.Runner.Resume()
			}
		}
	}
	c.gEngaged.Set(0)
}

// Summary renders the decision log compactly.
func (c *Controller) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %s: %d windows judged, %d engagements, currently engaged=%v\n",
		c.policy.Name(), len(c.actions), c.Engagements(), c.Engaged())
	return b.String()
}
