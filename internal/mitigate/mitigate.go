// Package mitigate closes the loop the paper motivates: its conclusion
// positions quantitative interference prediction as the missing input for
// "more effective I/O interference mitigation strategies". This package is
// one such strategy — a controller that watches the online predictor and,
// when the model says the protected application's I/O is degraded by at
// least the engage class, applies token-bucket rate limits (NRS-TBF style,
// the paper's reference [13]) to the interfering clients; when predictions
// stay clean it releases them.
package mitigate

import (
	"fmt"
	"strings"

	"quanterference/internal/core"
	"quanterference/internal/lustre"
	"quanterference/internal/monitor/window"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
)

// EngageAlways makes the controller throttle on every prediction, including
// class 0 ("no degradation"). The zero value of Config.EngageClass means
// "use the default" (class 1), so requesting class 0 needs this explicit
// sentinel.
const EngageAlways = -1

// Config tunes the controller.
type Config struct {
	// EngageClass is the minimum predicted class that triggers throttling
	// (default 1: any >=2x prediction). Set EngageAlways (-1) to engage on
	// class 0 too — the zero value is reserved for "default".
	EngageClass int
	// ThrottleBps is the per-client rate limit applied while engaged
	// (default 10 MB/s).
	ThrottleBps float64
	// ReleaseAfter is how many consecutive clean windows end throttling
	// (default 2, hysteresis against prediction flicker).
	ReleaseAfter int
}

func (c *Config) applyDefaults() {
	switch {
	case c.EngageClass == 0:
		c.EngageClass = 1
	case c.EngageClass <= EngageAlways:
		// Previously any negative value survived defaulting but could never
		// be distinguished from a typo; now it explicitly means class 0.
		c.EngageClass = 0
	}
	if c.ThrottleBps == 0 {
		c.ThrottleBps = 10e6
	}
	if c.ReleaseAfter == 0 {
		c.ReleaseAfter = 2
	}
}

// Action is one controller decision, for audit.
type Action struct {
	At       sim.Time
	Window   int
	Class    int
	Engaged  bool // state after the decision
	Switched bool // whether this decision changed the state
}

// Controller drives rate limits from per-window predictions.
type Controller struct {
	cfg     Config
	fw      *core.Framework
	victims []*lustre.Client

	engaged bool
	clean   int
	actions []Action
	mon     *core.LiveMonitor
}

// New attaches a controller to a live cluster. fw is the trained framework;
// record must be wired into the protected workload's Runner.OnRecord (use
// Record below); victims are the clients to throttle when interference is
// predicted to hurt the protected application.
func New(cl *core.Cluster, fw *core.Framework, victims []*lustre.Client, windowSize sim.Time, cfg Config) *Controller {
	cfg.applyDefaults()
	c := &Controller{cfg: cfg, fw: fw, victims: victims}
	c.mon = core.AttachLive(cl, windowSize, func(idx int, mat window.Matrix) {
		class, _ := fw.Predict(mat)
		c.decide(cl.Eng.Now(), idx, class)
	})
	return c
}

// Record is the client-monitor hook for the protected workload.
func (c *Controller) Record(rec workload.Record) { c.mon.Record(rec) }

// decide applies the hysteresis policy.
func (c *Controller) decide(now sim.Time, windowIdx, class int) {
	switched := false
	if class >= c.cfg.EngageClass {
		c.clean = 0
		if !c.engaged {
			c.engaged = true
			switched = true
			for _, v := range c.victims {
				v.SetRateLimit(c.cfg.ThrottleBps)
			}
		}
	} else if c.engaged {
		c.clean++
		if c.clean >= c.cfg.ReleaseAfter {
			c.engaged = false
			switched = true
			for _, v := range c.victims {
				v.SetRateLimit(0)
			}
		}
	}
	c.actions = append(c.actions, Action{
		At: now, Window: windowIdx, Class: class,
		Engaged: c.engaged, Switched: switched,
	})
}

// Engaged reports whether throttling is currently applied.
func (c *Controller) Engaged() bool { return c.engaged }

// Actions returns the decision log.
func (c *Controller) Actions() []Action { return c.actions }

// Stop detaches the controller and removes any active limits.
func (c *Controller) Stop() {
	c.mon.Stop()
	if c.engaged {
		c.engaged = false
		for _, v := range c.victims {
			v.SetRateLimit(0)
		}
	}
}

// Summary renders the decision log compactly.
func (c *Controller) Summary() string {
	var b strings.Builder
	engagements := 0
	for _, a := range c.actions {
		if a.Switched && a.Engaged {
			engagements++
		}
	}
	fmt.Fprintf(&b, "%d windows judged, %d engagements, currently engaged=%v\n",
		len(c.actions), engagements, c.engaged)
	return b.String()
}
