// Hardware-profile regression tests: the paper profile must be bit-identical
// to the pre-profile behaviour (pinned by the same golden as
// TestGoldenTrace), every named profile must be deterministic under a fixed
// seed, and the non-paper profiles must actually change simulated behaviour.
package quanterference_test

import (
	"errors"
	"testing"

	quant "quanterference"
)

// TestGoldenTracePaperProfile pins the tentpole API guarantee: a scenario
// explicitly carrying PaperProfile produces the same byte-identical DXT trace
// as the zero-value scenario did before hardware profiles existed.
func TestGoldenTracePaperProfile(t *testing.T) {
	s := goldenScenario()
	s.Hardware = quant.PaperProfile()
	res, err := quant.RunE(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("golden run truncated")
	}
	goldenCompare(t, "golden_run.dxt", encodeTrace(res))
}

// TestGoldenTraceWithHardwareOption checks the option path lands on the same
// bits as the field path.
func TestGoldenTraceWithHardwareOption(t *testing.T) {
	res, err := quant.RunE(goldenScenario(), quant.WithHardware(quant.PaperProfile()))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("golden run truncated")
	}
	goldenCompare(t, "golden_run.dxt", encodeTrace(res))
}

// TestProfileDeterminism runs the golden scenario twice on every named
// profile: same seed + same profile must reproduce the trace byte for byte.
func TestProfileDeterminism(t *testing.T) {
	for _, name := range quant.ProfileNames() {
		t.Run(name, func(t *testing.T) {
			p, err := quant.ProfileByName(name)
			if err != nil {
				t.Fatal(err)
			}
			run := func() string {
				s := goldenScenario()
				s.Hardware = p
				res, err := quant.RunE(s)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Finished {
					t.Fatalf("profile %s: run truncated", name)
				}
				return encodeTrace(res)
			}
			if run() != run() {
				t.Fatalf("profile %s: two identical runs diverged", name)
			}
		})
	}
}

// TestProfilesChangeBehaviour checks the non-paper profiles are not no-ops:
// each must produce a trace different from the paper testbed's.
func TestProfilesChangeBehaviour(t *testing.T) {
	trace := func(name string) string {
		p, err := quant.ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s := goldenScenario()
		s.Hardware = p
		res, err := quant.RunE(s)
		if err != nil {
			t.Fatal(err)
		}
		return encodeTrace(res)
	}
	paper := trace("paper")
	for _, name := range []string{"nvme", "fastnic", "burstbuffer"} {
		if trace(name) == paper {
			t.Errorf("profile %s produced the paper testbed's exact trace", name)
		}
	}
}

// TestUnknownProfile checks the typed lookup error reaches the facade.
func TestUnknownProfile(t *testing.T) {
	if _, err := quant.ProfileByName("hdd-raid"); !errors.Is(err, quant.ErrUnknownProfile) {
		t.Fatalf("ProfileByName(hdd-raid) = %v, want ErrUnknownProfile", err)
	}
}
