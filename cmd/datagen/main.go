// Command datagen runs the §III-D training-data collection pipeline for a
// chosen target workload family and writes the labelled dataset as JSON for
// cmd/quanttrain.
//
// Usage:
//
//	datagen -dataset io500|dlio|enzo|amrex|openpmd [-scale 1.0] [-window 1]
//	        [-seed 42] [-profile paper|nvme|fastnic|burstbuffer]
//	        [-faults disk-slow:ost0:10:30:4] [-rpc-timeout 0.5]
//	        -out dataset.json
//
// -profile selects the hardware profile every collection run simulates; the
// dataset header records it, so training tools can tell datasets from
// different hardware apart.
//
// -faults injects the same deterministic degraded-mode episodes into every
// collection run, generating training data from a reproducibly sick cluster.
// Variants whose runs cannot finish under the faults are skipped and
// reported, not fatal.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/experiments"
	"quanterference/internal/fault"
	"quanterference/internal/hw"
	"quanterference/internal/sim"
	"quanterference/internal/workload/apps"
)

var (
	which     = flag.String("dataset", "io500", "io500, dlio, enzo, amrex, or openpmd")
	scale     = flag.Float64("scale", 1.0, "workload volume scale")
	window    = flag.Int("window", 1, "aggregation window in seconds")
	seed      = flag.Int64("seed", 42, "root random seed")
	out       = flag.String("out", "dataset.json", "output JSON path")
	csvOut    = flag.String("csv", "", "also write a flat CSV view to this path")
	faultsArg = flag.String("faults", "", "comma-separated fault episodes injected into every run, each kind:target:start:duration[:severity] with times in seconds")
	rpcTO     = flag.Float64("rpc-timeout", 0, "client bulk-RPC timeout in seconds (0 = no timeouts)")
	profile   = flag.String("profile", "", "hardware profile for every run: "+strings.Join(hw.Names(), ", ")+" (default paper)")
)

func main() {
	flag.Parse()
	var report core.CollectReport
	if *profile != "" {
		if _, err := hw.ByName(*profile); err != nil {
			fatal(err)
		}
	}
	cfg := experiments.DatasetConfig{
		Scale:      experiments.Scale(*scale),
		Window:     sim.Time(*window) * sim.Second,
		Seed:       *seed,
		RPCTimeout: sim.Seconds(*rpcTO),
		Report:     &report,
		Profile:    *profile,
	}
	if *faultsArg != "" {
		specs, err := fault.ParseSpecs(*faultsArg)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = specs
	}
	var ds *dataset.Dataset
	switch *which {
	case "io500":
		ds = experiments.IO500Dataset(cfg)
	case "dlio":
		ds = experiments.DLIODataset(cfg)
	default:
		app, err := apps.ParseApp(*which)
		if err != nil {
			fatal(fmt.Errorf("unknown dataset %q (want io500, dlio, enzo, amrex, openpmd)", *which))
		}
		ds = experiments.AppDataset(app, cfg)
	}
	if err := ds.Save(*out); err != nil {
		fatal(err)
	}
	if *csvOut != "" {
		if err := ds.SaveCSV(*csvOut); err != nil {
			fatal(err)
		}
	}
	prof := ds.Profile
	if prof == "" {
		prof = "paper"
	}
	fmt.Printf("dataset %s (profile %s): %d samples, class balance %v, %d targets x %d features -> %s\n",
		*which, prof, ds.Len(), ds.ClassCounts(), ds.NTargets, len(ds.FeatureNames), *out)
	if len(report.Skipped) > 0 {
		fmt.Printf("variant runs: %d/%d completed, %d skipped:\n",
			report.Completed, report.Variants, len(report.Skipped))
		for _, sk := range report.Skipped {
			fmt.Printf("  %s: %v\n", sk.Name, sk.Err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
