// Command datagen runs the §III-D training-data collection pipeline for a
// chosen target workload family and writes the labelled dataset as JSON for
// cmd/quanttrain.
//
// Usage:
//
//	datagen -dataset io500|dlio|enzo|amrex|openpmd [-scale 1.0] [-window 1]
//	        [-seed 42] -out dataset.json
package main

import (
	"flag"
	"fmt"
	"os"

	"quanterference/internal/dataset"
	"quanterference/internal/experiments"
	"quanterference/internal/sim"
	"quanterference/internal/workload/apps"
)

var (
	which  = flag.String("dataset", "io500", "io500, dlio, enzo, amrex, or openpmd")
	scale  = flag.Float64("scale", 1.0, "workload volume scale")
	window = flag.Int("window", 1, "aggregation window in seconds")
	seed   = flag.Int64("seed", 42, "root random seed")
	out    = flag.String("out", "dataset.json", "output JSON path")
	csvOut = flag.String("csv", "", "also write a flat CSV view to this path")
)

func main() {
	flag.Parse()
	cfg := experiments.DatasetConfig{
		Scale:  experiments.Scale(*scale),
		Window: sim.Time(*window) * sim.Second,
		Seed:   *seed,
	}
	var ds *dataset.Dataset
	switch *which {
	case "io500":
		ds = experiments.IO500Dataset(cfg)
	case "dlio":
		ds = experiments.DLIODataset(cfg)
	default:
		app, err := apps.ParseApp(*which)
		if err != nil {
			fatal(fmt.Errorf("unknown dataset %q (want io500, dlio, enzo, amrex, openpmd)", *which))
		}
		ds = experiments.AppDataset(app, cfg)
	}
	if err := ds.Save(*out); err != nil {
		fatal(err)
	}
	if *csvOut != "" {
		if err := ds.SaveCSV(*csvOut); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("dataset %s: %d samples, class balance %v, %d targets x %d features -> %s\n",
		*which, ds.Len(), ds.ClassCounts(), ds.NTargets, len(ds.FeatureNames), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
