// Command quanttrain trains and evaluates the paper's kernel-based model on
// a dataset produced by cmd/datagen, printing the confusion matrix and
// per-class precision/recall/F1 (the content of Figures 3-5).
//
// Usage:
//
//	quanttrain -data dataset.json [-bins binary|severity] [-epochs 60]
//	           [-flat] [-seed 42] [-save framework.json]
//	           [-pprof localhost:6060]
//
// -pprof serves net/http/pprof profiles and a /metrics runtime-metrics dump
// on the given address for the duration of training.
package main

import (
	"flag"
	"fmt"
	"os"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/ml"
	"quanterference/internal/obs"
)

var (
	dataPath = flag.String("data", "dataset.json", "dataset JSON from cmd/datagen")
	binsName = flag.String("bins", "binary", "binary (>=2x) or severity (<2, 2-5, >=5)")
	epochs   = flag.Int("epochs", 60, "training epochs")
	flat     = flag.Bool("flat", false, "use the flat-MLP ablation baseline instead of the kernel model")
	seed     = flag.Int64("seed", 42, "random seed for split and init")
	savePath = flag.String("save", "", "persist the trained framework (model + scaler + bins) to this file")
	workers  = flag.Int("train-workers", 0, "data-parallel gradient workers (0 = serial legacy path; weights are identical for any value >= 1)")
	pprofAdr = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
)

func main() {
	flag.Parse()
	if *pprofAdr != "" {
		go func() {
			if err := obs.ServeDebug(*pprofAdr); err != nil {
				fmt.Fprintln(os.Stderr, "quanttrain: pprof:", err)
			}
		}()
		fmt.Printf("pprof + /metrics on http://%s/debug/pprof/\n", *pprofAdr)
	}
	ds, err := dataset.Load(*dataPath)
	if err != nil {
		fatal(err)
	}
	var bins label.Bins
	switch *binsName {
	case "binary":
		bins = label.BinaryBins()
	case "severity":
		bins = label.SeverityBins()
	default:
		fatal(fmt.Errorf("unknown bins %q", *binsName))
	}
	if bins.Classes() != ds.Classes {
		// Re-derive labels from the stored degradation levels.
		ds = ds.Rebin(bins.Classes(), bins.Label)
	}
	fmt.Printf("dataset: %d samples, balance %v, %d targets x %d features\n",
		ds.Len(), ds.ClassCounts(), ds.NTargets, len(ds.FeatureNames))

	fw, cm, err := core.TrainFrameworkE(ds, core.FrameworkConfig{
		Bins: bins, Seed: *seed, Flat: *flat,
		Train: ml.TrainConfig{
			Epochs: *epochs, Seed: *seed, Workers: *workers,
			OnEpoch: func(e int, loss float64) {
				if (e+1)%10 == 0 {
					fmt.Printf("  epoch %3d  loss %.4f\n", e+1, loss)
				}
			},
		},
	})
	if err != nil {
		fatal(err)
	}
	names := make([]string, bins.Classes())
	for c := range names {
		names[c] = bins.Name(c)
	}
	fmt.Println()
	fmt.Print(cm.Render(names))
	if *savePath != "" {
		if err := fw.Save(*savePath); err != nil {
			fatal(err)
		}
		fmt.Printf("framework saved to %s\n", *savePath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "quanttrain:", err)
	os.Exit(1)
}
