// Command simrun executes one workload scenario on the simulated cluster
// and reports the target's per-operation-type latency profile plus every
// storage target's server-side counters — a quick way to explore how a
// workload behaves under a chosen interference pattern.
//
// Usage:
//
//	simrun -target ior-easy-write [-ranks 4]
//	       [-interference ior-easy-read -instances 3 -iranks 6]
//	       [-scale 1.0] [-maxtime 300] [-trace run.dxt]
//	       [-trace-events run.json] [-stats]
//	       [-faults disk-slow:ost0:10:5:4,mds-storm:mdt:0:20:8] [-rpc-timeout 0.5]
//
// -faults injects deterministic degraded-mode episodes (fail-slow disk, OST
// stall, cache squeeze, MDS storm, NIC collapse); -rpc-timeout arms the
// clients' timeout/retry path so the run reports degraded-mode counters.
//
// -trace-events writes a Chrome trace-event file of the simulator's own
// internals (disk service, block-queue latency, network flows, OST flushes,
// MDS ops) — load it in about:tracing or https://ui.perfetto.dev. -stats
// prints the end-of-run observability counters for every component.
//
// Target and interference accept any IO500 task name (ior-easy-read,
// ior-hard-write, mdt-easy-write, ...), a DLIO model (dlio-unet3d,
// dlio-bert), or an application (enzo, amrex, openpmd).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"quanterference/internal/core"
	"quanterference/internal/fault"
	"quanterference/internal/monitor/clientmon"
	"quanterference/internal/obs"
	"quanterference/internal/sim"
	"quanterference/internal/trace"
	"quanterference/internal/workload/registry"
)

var (
	target    = flag.String("target", "ior-easy-write", "target workload name")
	ranks     = flag.Int("ranks", 4, "target ranks")
	interf    = flag.String("interference", "", "interference workload name (empty = none)")
	instances = flag.Int("instances", 3, "interference instances")
	iranks    = flag.Int("iranks", 6, "ranks per interference instance")
	scale     = flag.Float64("scale", 1.0, "workload volume scale")
	maxTime   = flag.Float64("maxtime", 300, "simulated time cap in seconds")
	tracePath = flag.String("trace", "", "write the target's DXT-style op trace to this file")
	profile   = flag.Bool("profile", false, "print a Darshan-style per-file profile of the target")
	eventPath = flag.String("trace-events", "", "write a Chrome trace-event JSON of simulator internals to this file")
	stats     = flag.Bool("stats", false, "print the end-of-run observability counters")
	faults    = flag.String("faults", "", "comma-separated fault episodes, each kind:target:start:duration[:severity] with times in seconds (e.g. disk-slow:ost0:10:5:4)")
	rpcTO     = flag.Float64("rpc-timeout", 0, "client bulk-RPC timeout in seconds (0 = no timeouts; set alongside -faults to exercise retries)")
)

func main() {
	flag.Parse()
	gen, err := registry.Resolve(*target, registry.Spec{
		Dir: "/target", Ranks: *ranks, Scale: *scale,
	})
	if err != nil {
		fatal(err)
	}
	scenario := core.Scenario{
		Target: core.TargetSpec{
			Gen: gen, Nodes: []string{"c0", "c1"}, Ranks: *ranks,
		},
		MaxTime: sim.Seconds(*maxTime),
	}
	if *faults != "" {
		specs, err := fault.ParseSpecs(*faults)
		if err != nil {
			fatal(err)
		}
		scenario.Faults = specs
	}
	scenario.FSConfig.RPCTimeout = sim.Seconds(*rpcTO)
	if *interf != "" {
		for i := 0; i < *instances; i++ {
			igen, err := registry.Resolve(*interf, registry.Spec{
				Dir: fmt.Sprintf("/bg%d", i), Ranks: *iranks, Scale: *scale,
			})
			if err != nil {
				fatal(err)
			}
			scenario.Interference = append(scenario.Interference, core.InterferenceSpec{
				Gen: igen, Nodes: []string{"c2", "c3", "c4", "c5", "c6"}, Ranks: *iranks,
			})
		}
	}
	sink := obs.New()
	if *eventPath != "" {
		sink.EnableTrace(0)
	}
	res, err := core.RunE(scenario, core.WithSink(sink))
	if err != nil {
		fatal(err)
	}
	if *eventPath != "" {
		f, err := os.Create(*eventPath)
		if err != nil {
			fatal(err)
		}
		if err := sink.WriteTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d trace events to %s (dropped %d)\n",
			sink.TraceSpans(), *eventPath, sink.TraceDropped())
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		tw := trace.NewWriter(f)
		for _, rec := range res.Records {
			tw.Write(rec)
		}
		if err := tw.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d trace records to %s\n", tw.Count(), *tracePath)
	}
	fmt.Printf("target %s ranks=%d interference=%q x%d\n", *target, *ranks, *interf, *instances)
	fmt.Printf("finished=%v duration=%.3fs ops=%d windows=%d\n",
		res.Finished, sim.ToSeconds(res.Duration), len(res.Records), len(res.Windows))
	if len(scenario.Faults) > 0 {
		fmt.Printf("faults injected=%d timeouts=%d retries=%d degraded_ops=%d\n",
			res.Stats.CounterTotal("fault", "injected"),
			res.Stats.CounterTotal("client", "timeouts"),
			res.Stats.CounterTotal("client", "retries"),
			res.Stats.CounterTotal("client", "degraded_ops"))
	}
	fmt.Println()

	// Per-op-kind latency profile.
	type agg struct {
		n          int
		total, max sim.Time
	}
	byKind := map[string]*agg{}
	for _, rec := range res.Records {
		k := rec.Op.Kind.String()
		a, ok := byKind[k]
		if !ok {
			a = &agg{}
			byKind[k] = a
		}
		a.n++
		a.total += rec.Duration()
		if rec.Duration() > a.max {
			a.max = rec.Duration()
		}
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("%-8s%10s%14s%14s\n", "op", "count", "mean(ms)", "max(ms)")
	for _, k := range kinds {
		a := byKind[k]
		fmt.Printf("%-8s%10d%14.3f%14.3f\n", k, a.n,
			sim.ToSeconds(a.total)/float64(a.n)*1e3, sim.ToSeconds(a.max)*1e3)
	}

	if *profile {
		prof := clientmon.NewProfiler()
		for _, rec := range res.Records {
			prof.Record(rec)
		}
		fmt.Printf("\nper-file profile (top 12 by I/O time):\n%s", prof.Render(12))
	}

	// Server-side counters: last finalized window, per target.
	fmt.Printf("\nserver-side metrics (last window):\n")
	idxs := make([]int, 0, len(res.ServerWindows))
	for idx := range res.ServerWindows {
		idxs = append(idxs, idx)
	}
	if len(idxs) > 0 {
		sort.Ints(idxs)
		last := res.ServerWindows[idxs[len(idxs)-1]]
		names := []string{"ost0", "ost1", "ost2", "ost3", "ost4", "ost5", "mdt"}
		fmt.Printf("%-6s%16s%16s%16s\n", "tgt", "completed_ios", "sectors_w", "queue_time_s")
		for t, vec := range last {
			name := "?"
			if t < len(names) {
				name = names[t]
			}
			fmt.Printf("%-6s%16.0f%16.0f%16.3f\n", name, vec[0], vec[6], vec[18])
		}
	}

	if *stats {
		fmt.Printf("\nobservability counters:\n%s", res.Stats.Render())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simrun:", err)
	os.Exit(1)
}
