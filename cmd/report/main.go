// Command report bundles the outputs of cmd/figures into one self-contained
// HTML page with every table, figure, and SVG inline.
//
// Usage:
//
//	report [-in out] [-o report.html]
package main

import (
	"flag"
	"fmt"
	"os"

	"quanterference/internal/report"
)

var (
	inDir   = flag.String("in", "out", "directory with cmd/figures outputs")
	outPath = flag.String("o", "report.html", "output HTML file")
)

func main() {
	flag.Parse()
	html, err := report.Build(*inDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*outPath, []byte(html), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *outPath, len(html))
}
