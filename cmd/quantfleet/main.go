// Command quantfleet exercises the fleet coordinator (internal/fleet): N
// serve replicas behind seeded rendezvous routing with failover, federated
// reservoir merge, and rolling promotion with rollback.
//
// Usage:
//
//	quantfleet -smoke                      # deterministic 3-replica episode
//	quantfleet -shadow                     # shadow-gated promotion episode
//	quantfleet -status name=url [name=url ...]  # aggregate fleet /v1/healthz
//
// -smoke runs the full fleet episode in-process — three replicas over
// httptest listeners, a mid-episode kill with zero dropped requests, a
// failed promotion that rolls back, a restart with reservoir restore, an
// order-independent merged retrain, and a clean fleet-wide rollout — and
// prints the coordinator's decision timeline. The output contains replica
// names and weight digests only (no ports, no timestamps), so two runs with
// the same seed are byte-identical; `make fleet-smoke` compares exactly
// that.
//
// -shadow runs the shadow-evaluation episode: three replicas serve a weak
// champion with one shared shadow evaluator tapped into every batcher, three
// challengers are scored on the mirrored live traffic as delayed labels
// arrive, and the N-way gate verdict drives fleet.PromoteShadowed — exactly
// the margin-winning challenger rolls out fleet-wide. A second epoch under a
// forced-reject margin (the rollback drill) keeps the new incumbent. Output
// is digests and scores only; `make shadow-smoke` byte-compares two runs.
//
// -status treats each argument as name=url (bare URLs get r0, r1, ...
// names), probes every replica's /v1/healthz, and prints the aggregated
// fleet view, including each replica's last routing-failure cause when the
// coordinator has seen one.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/fleet"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/obs"
	"quanterference/internal/online"
	"quanterference/internal/serve"
	shadowpkg "quanterference/internal/shadow"
	"quanterference/internal/sim"
)

var (
	smoke    = flag.Bool("smoke", false, "run the deterministic in-process 3-replica episode")
	shadow   = flag.Bool("shadow", false, "run the deterministic shadow-gated promotion episode")
	status   = flag.Bool("status", false, "aggregate /v1/healthz across the given name=url replicas")
	seed     = flag.Int64("seed", 1, "seed for training, routing, and the episode's request stream")
	requests = flag.Int("requests", 24, "requests to route during the smoke episode")
)

func main() {
	flag.Parse()
	switch {
	case *smoke:
		if err := runSmoke(*seed, *requests); err != nil {
			fatal(err)
		}
	case *shadow:
		if err := runShadow(*seed); err != nil {
			fatal(err)
		}
	case *status:
		if err := runStatus(flag.Args()); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "quantfleet: pass -smoke, -shadow, or -status (see -help)")
		os.Exit(2)
	}
}

// replicaCount is fixed at three: the smallest fleet where a mid-rollout
// failure leaves both promoted and untouched replicas to verify against.
const replicaCount = 3

// episode bundles one smoke replica's handles so the harness can kill and
// restart it.
type episode struct {
	coord   *fleet.Coordinator
	master  *core.Framework // pristine incumbent the fleet serves clones of
	servers []*serve.Server
	https   []*httptest.Server
	loops   []*online.Loop
	names   []string
}

func runSmoke(seed int64, requests int) error {
	ctx := context.Background()
	fmt.Printf("fleet-smoke: %d replicas, seed %d\n", replicaCount, seed)

	ep, err := buildEpisode(seed)
	if err != nil {
		return err
	}
	defer func() {
		for _, ts := range ep.https {
			ts.Close()
		}
		for _, s := range ep.servers {
			_ = s.Shutdown(context.Background())
		}
	}()
	incDigest := ml.WeightsDigest(ep.master.ExportWeights())
	fmt.Println("incumbent", incDigest)

	// Each replica labels its own stream slice into its reservoir.
	feedLoops(ep, 20)

	// Persist every reservoir before anything goes wrong.
	dir, err := os.MkdirTemp("", "fleet-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if err := ep.coord.SaveBuffers(dir); err != nil {
		return err
	}

	// Route the request stream, killing r1 a third of the way through: its
	// keys fail over and nothing is dropped.
	rng := sim.NewRNG(seed ^ 0x5710)
	kill := requests / 3
	for i := 0; i < requests; i++ {
		if i == kill {
			ep.https[1].Close()
			_ = ep.servers[1].Shutdown(ctx)
			ep.coord.Note("kill r1")
		}
		if _, err := ep.coord.Predict(ctx, fmt.Sprintf("w%03d", i), smokeMatrix(rng)); err != nil {
			return fmt.Errorf("request %d dropped: %w", i, err)
		}
	}

	// A rollout while r1 is dead must halt and roll the promoted prefix
	// back to the incumbent digest.
	deadCand := trainOn(mustMerged(ep), seed+100)
	if err := ep.coord.Promote(ctx, deadCand); err == nil {
		return fmt.Errorf("promotion with a dead replica unexpectedly succeeded")
	}
	for i, s := range ep.servers {
		if got := s.ModelDigest(); got != incDigest {
			return fmt.Errorf("replica %s serves %s after rollback, want incumbent %s", ep.names[i], got, incDigest)
		}
	}

	// Restart r1 under the same identity and restore every reservoir from
	// disk; the fleet's merged corpus must digest exactly as before the kill.
	if err := restartReplica(ep, 1, seed); err != nil {
		return err
	}
	if err := ep.coord.LoadBuffers(dir); err != nil {
		return err
	}
	merged, err := ep.coord.MergedDataset()
	if err != nil {
		return err
	}
	var reversed []*dataset.Dataset
	for i := len(ep.loops) - 1; i >= 0; i-- {
		reversed = append(reversed, ep.loops[i].ExportBuffer(ep.names[i]))
	}
	back, err := dataset.MergeAll(reversed...)
	if err != nil {
		return err
	}
	orderOK := "ok"
	if merged.Digest() != back.Digest() {
		orderOK = "DIVERGED"
	}
	fmt.Printf("merged %d samples digest %s (order-independent: %s)\n", merged.Len(), merged.Digest(), orderOK)

	// Retrain on the fleet's combined history and roll it out cleanly.
	cand := trainOn(merged, seed+200)
	fmt.Println("retrained candidate", ml.WeightsDigest(cand.ExportWeights()))
	if err := ep.coord.Promote(ctx, cand); err != nil {
		return fmt.Errorf("final rollout: %w", err)
	}

	for _, ev := range ep.coord.Timeline() {
		fmt.Println(ev)
	}
	st := ep.coord.Status(ctx)
	fmt.Printf("fleet consistent: %v %s model %s\n", st.Consistent, st.APIVersion, st.ModelDigest)
	fmt.Printf("accepted %d/%d dropped %d\n", ep.coord.Accepted(), requests, ep.coord.Dropped())
	if st.Healthy != replicaCount || !st.Consistent || ep.coord.Dropped() != 0 {
		return fmt.Errorf("episode did not converge: %d healthy, consistent %v, %d dropped",
			st.Healthy, st.Consistent, ep.coord.Dropped())
	}
	fmt.Println("fleet-smoke: OK")
	return nil
}

// Shadow episode sizing: enough labeled traffic per epoch to clear the
// gate's minimum sample count with a determinate accuracy lead.
const (
	shadowRequests   = 96
	shadowMinSamples = 32
	shadowMargin     = 0.01
)

// runShadow is the shadow-evaluation episode: a weak champion serves a
// 3-replica fleet while three challengers are scored on the mirrored live
// traffic, and the gate verdict drives the fleet-wide rollout. A second
// epoch under a forced-reject margin keeps the new incumbent.
func runShadow(seed int64) error {
	ctx := context.Background()
	fmt.Printf("shadow-smoke: %d replicas, 3 challengers, seed %d\n", replicaCount, seed)

	// Weak champion: one epoch on the shared corpus. Challengers train on the
	// same corpus at different depths and seeds; the gate picks whichever
	// actually wins on the live mirrored traffic.
	corpus := shadowCorpus(seed)
	champion := trainEpochs(corpus, seed, 1)
	champDigest := ml.WeightsDigest(champion.ExportWeights())
	fmt.Println("champion", champDigest)
	challengers := []struct {
		name   string
		epochs int
		fw     *core.Framework
	}{
		{name: "c0", epochs: 2},
		{name: "c1", epochs: 8},
		{name: "c2", epochs: 3},
	}
	cands := make(map[string]*core.Framework, len(challengers))
	for i := range challengers {
		c := &challengers[i]
		c.fw = trainEpochs(corpus, seed+int64(i)+1, c.epochs)
		cands[c.name] = c.fw
		fmt.Printf("challenger %s epochs %d %s\n", c.name, c.epochs, ml.WeightsDigest(c.fw.ExportWeights()))
	}

	// One shared evaluator tapped into every replica's batcher, sharing one
	// sink so the mirror counters surface on each replica's /v1/stats.
	sink := obs.New()
	ev, err := shadowpkg.New(champion, shadowpkg.Config{
		Seed: seed, QueueCap: 4 * shadowRequests,
		MinSamples: shadowMinSamples, Margin: shadowMargin, Sink: sink,
	})
	if err != nil {
		return err
	}
	for _, c := range challengers {
		if err := ev.AddChallenger(c.name, c.fw); err != nil {
			return err
		}
	}

	ep := &episode{master: champion}
	replicas := make([]*fleet.Replica, replicaCount)
	for i := 0; i < replicaCount; i++ {
		fw, err := champion.Clone()
		if err != nil {
			return err
		}
		s := serve.New(fw, serve.Config{Shadow: ev, Sink: sink})
		ts := httptest.NewServer(s.Handler())
		name := fmt.Sprintf("r%d", i)
		ep.servers = append(ep.servers, s)
		ep.https = append(ep.https, ts)
		ep.names = append(ep.names, name)
		replicas[i] = fleet.NewReplica(name, s, serve.NewClient(ts.URL), nil)
	}
	defer func() {
		for _, ts := range ep.https {
			ts.Close()
		}
		for _, s := range ep.servers {
			_ = s.Shutdown(context.Background())
		}
	}()
	coord, err := fleet.New(fleet.Config{Seed: seed}, replicas...)
	if err != nil {
		return err
	}

	// Epoch 1: route labeled traffic through the fleet — every reply is
	// mirrored by the answering replica's batcher — then join the delayed
	// labels and read the verdict.
	rng := sim.NewRNG(seed ^ 0x5ade)
	if err := shadowEpochTraffic(ctx, coord, ev, rng, 0, shadowRequests); err != nil {
		return err
	}
	printScoreboard(ev)

	verdict := ev.Verdict()
	if !verdict.Promote {
		return fmt.Errorf("no challenger cleared the gate (champion %.4f, best %.4f); episode expects a winner",
			verdict.IncumbentAccuracy, verdict.CandidateAccuracy)
	}
	fmt.Printf("verdict: promote %s (lead %.4f over champion %.4f, margin %.2f, n %d)\n",
		verdict.Winner, verdict.CandidateAccuracy, verdict.IncumbentAccuracy, verdict.Margin, verdict.Holdout)
	if err := coord.PromoteShadowed(ctx, verdict, cands); err != nil {
		return fmt.Errorf("shadow-gated rollout: %w", err)
	}
	winDigest := ml.WeightsDigest(cands[verdict.Winner].ExportWeights())
	for i, s := range ep.servers {
		if got := s.ModelDigest(); got != winDigest {
			return fmt.Errorf("replica %s serves %s after rollout, want winner %s", ep.names[i], got, winDigest)
		}
	}
	fmt.Printf("promoted %s fleet-wide: %s\n", verdict.Winner, winDigest)

	// Epoch 2: the winner is the new champion; fresh challengers are scored
	// under a forced-reject margin (the drill), so the incumbent must hold.
	if err := ev.Reset(cands[verdict.Winner]); err != nil {
		return err
	}
	drill := trainEpochs(corpus, seed+10, 8)
	if err := ev.AddChallenger("drill", drill); err != nil {
		return err
	}
	ev.SetMargin(2) // impossible bar: force-reject every challenger
	if err := shadowEpochTraffic(ctx, coord, ev, rng, shadowRequests, shadowRequests); err != nil {
		return err
	}
	printScoreboard(ev)
	drillVerdict := ev.Verdict()
	if err := coord.PromoteShadowed(ctx, drillVerdict, map[string]*core.Framework{"drill": drill}); !errors.Is(err, fleet.ErrShadowRejected) {
		return fmt.Errorf("forced-reject drill promoted anyway: %v", err)
	}
	fmt.Println("verdict: keep incumbent (forced-reject margin)")
	for i, s := range ep.servers {
		if got := s.ModelDigest(); got != winDigest {
			return fmt.Errorf("replica %s serves %s after the drill, want incumbent %s", ep.names[i], got, winDigest)
		}
	}

	fmt.Println("timeline:")
	for _, e := range coord.Timeline() {
		fmt.Println(e)
	}
	st := ev.Status()
	fmt.Printf("mirrored %d dropped %d labeled %d unmatched %d\n", st.Mirrored, st.Dropped, st.Labeled, st.Unmatched)
	if st.Dropped != 0 || st.Unmatched != 0 || coord.Dropped() != 0 {
		return fmt.Errorf("episode shed traffic: %d mirror drops, %d unmatched labels, %d route drops",
			st.Dropped, st.Unmatched, coord.Dropped())
	}
	fmt.Println("shadow-smoke: OK")
	return nil
}

// shadowEpochTraffic routes n sequentially keyed requests through the fleet
// and immediately joins each one's delayed label: even windows are healthy
// (degradation 1), odd are degraded (degradation 3), matching the corpus.
func shadowEpochTraffic(ctx context.Context, coord *fleet.Coordinator, ev *shadowpkg.Evaluator, rng *sim.RNG, base, n int) error {
	for i := 0; i < n; i++ {
		mat := make(window.Matrix, nTargets)
		for t := range mat {
			row := make([]float64, nFeat)
			for f := range row {
				row[f] = rng.NormFloat64() + 2*float64(i%2)
			}
			mat[t] = row
		}
		if _, err := coord.Predict(ctx, fmt.Sprintf("w%03d", base+i), mat); err != nil {
			return fmt.Errorf("request %d dropped: %w", base+i, err)
		}
		if !ev.Label(mat, 1+2*float64(i%2)) {
			return fmt.Errorf("request %d was answered but not mirrored", base+i)
		}
	}
	return nil
}

// printScoreboard prints every candidate's live score, champion first, in
// registration order — digest-free and deterministic for byte comparison.
func printScoreboard(ev *shadowpkg.Evaluator) {
	st := ev.Status()
	fmt.Println("scoreboard:")
	rows := append([]serve.ShadowCandidate{st.Champion}, st.Challengers...)
	for _, r := range rows {
		fmt.Printf("  %-8s acc %.4f ce %.4f n %d\n", r.Name, r.Accuracy, r.CE, r.Samples)
	}
}

// shadowCorpus is the shared training corpus for the shadow episode's
// champion and challengers (same distribution as smokeFramework's).
func shadowCorpus(seed int64) *dataset.Dataset {
	names := make([]string, nFeat)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	ds := dataset.New(names, nTargets, 2)
	rng := sim.NewRNG(seed)
	for i := 0; i < 64; i++ {
		vecs := make([][]float64, nTargets)
		for t := range vecs {
			v := make([]float64, nFeat)
			for f := range v {
				v[f] = rng.NormFloat64() + 2*float64(i%2)
			}
			vecs[t] = v
		}
		ds.Add(&dataset.Sample{Label: i % 2, Degradation: 1 + 2*float64(i%2), Vectors: vecs})
	}
	return ds
}

// trainEpochs trains one candidate at the given depth; panics on failure
// like trainOn (the smoke corpus is known-good).
func trainEpochs(ds *dataset.Dataset, seed int64, epochs int) *core.Framework {
	fw, _, err := core.TrainFrameworkE(ds, core.FrameworkConfig{Seed: seed, Train: ml.TrainConfig{Epochs: epochs}})
	if err != nil {
		panic(err)
	}
	return fw
}

func buildEpisode(seed int64) (*episode, error) {
	master, err := smokeFramework(seed)
	if err != nil {
		return nil, err
	}
	ep := &episode{master: master}
	replicas := make([]*fleet.Replica, replicaCount)
	for i := 0; i < replicaCount; i++ {
		name := fmt.Sprintf("r%d", i)
		s, ts, loop, err := bootReplica(master, seed, i)
		if err != nil {
			return nil, err
		}
		ep.servers = append(ep.servers, s)
		ep.https = append(ep.https, ts)
		ep.loops = append(ep.loops, loop)
		ep.names = append(ep.names, name)
		replicas[i] = fleet.NewReplica(name, s, serve.NewClient(ts.URL), loop)
	}
	ep.coord, err = fleet.New(fleet.Config{Seed: seed}, replicas...)
	if err != nil {
		return nil, err
	}
	return ep, nil
}

// bootReplica starts one serving instance on a clone of the incumbent.
func bootReplica(master *core.Framework, seed int64, i int) (*serve.Server, *httptest.Server, *online.Loop, error) {
	fw, err := master.Clone()
	if err != nil {
		return nil, nil, nil, err
	}
	s := serve.New(fw, serve.Config{})
	ts := httptest.NewServer(s.Handler())
	loop, err := online.NewLoop(s, online.Config{Seed: seed + int64(i)})
	if err != nil {
		ts.Close()
		return nil, nil, nil, err
	}
	return s, ts, loop, nil
}

// restartReplica boots a fresh server + empty loop for slot i and rebinds
// it into the coordinator under its old name.
func restartReplica(ep *episode, i int, seed int64) error {
	s, ts, loop, err := bootReplica(ep.master, seed, i)
	if err != nil {
		return err
	}
	ep.servers[i], ep.https[i], ep.loops[i] = s, ts, loop
	return ep.coord.Rebind(ep.names[i], s, serve.NewClient(ts.URL), loop)
}

// feedLoops offers nEach deterministic labeled windows to every replica's
// loop; alternating degradation keeps both classes represented.
func feedLoops(ep *episode, nEach int) {
	for i, l := range ep.loops {
		rng := sim.NewRNG(1000 + int64(i))
		for w := 0; w < nEach; w++ {
			mat := smokeMatrix(rng)
			l.OfferWindow(mat)
			l.OfferLabeled(online.Example{Window: w, Matrix: mat, Degradation: 1 + 2*float64(w%2)})
		}
	}
}

func mustMerged(ep *episode) *dataset.Dataset {
	ds, err := ep.coord.MergedDataset()
	if err != nil {
		panic(err)
	}
	return ds
}

// trainOn trains a candidate on the merged fleet corpus; same corpus + same
// seed = bit-identical weights, which is what the byte-compared smoke pins.
func trainOn(ds *dataset.Dataset, seed int64) *core.Framework {
	fw, _, err := core.TrainFrameworkE(ds, core.FrameworkConfig{Seed: seed, Train: ml.TrainConfig{Epochs: 5}})
	if err != nil {
		panic(err)
	}
	return fw
}

const nTargets, nFeat = 3, 5

// smokeFramework trains the episode's tiny synthetic incumbent (same shape
// as quantserve -smoke).
func smokeFramework(seed int64) (*core.Framework, error) {
	names := make([]string, nFeat)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	ds := dataset.New(names, nTargets, 2)
	rng := sim.NewRNG(seed)
	for i := 0; i < 64; i++ {
		vecs := make([][]float64, nTargets)
		for t := range vecs {
			v := make([]float64, nFeat)
			for f := range v {
				v[f] = rng.NormFloat64() + 2*float64(i%2)
			}
			vecs[t] = v
		}
		ds.Add(&dataset.Sample{Label: i % 2, Degradation: 1 + 2*float64(i%2), Vectors: vecs})
	}
	fw, _, err := core.TrainFrameworkE(ds, core.FrameworkConfig{Seed: seed, Train: ml.TrainConfig{Epochs: 5}})
	return fw, err
}

func smokeMatrix(rng *sim.RNG) window.Matrix {
	mat := make(window.Matrix, nTargets)
	for t := range mat {
		row := make([]float64, nFeat)
		for f := range row {
			row[f] = rng.NormFloat64()
		}
		mat[t] = row
	}
	return mat
}

// runStatus probes each name=url replica and prints the aggregate view.
func runStatus(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("quantfleet: -status needs at least one name=url or url argument")
	}
	replicas := make([]*fleet.Replica, len(args))
	for i, arg := range args {
		name, url := fmt.Sprintf("r%d", i), arg
		if eq := strings.IndexByte(arg, '='); eq > 0 && !strings.HasPrefix(arg, "http") {
			name, url = arg[:eq], arg[eq+1:]
		}
		replicas[i] = fleet.NewReplica(name, nil, serve.NewClient(url, serve.WithTimeout(5*time.Second)), nil)
	}
	c, err := fleet.New(fleet.Config{}, replicas...)
	if err != nil {
		return err
	}
	st := c.Status(context.Background())
	for _, r := range st.Replicas {
		// A one-shot probe has no routing history; LastFailure fills in when
		// a long-lived coordinator (tests, embedded use) calls Status.
		suffix := ""
		if r.LastFailure != "" {
			suffix = " last-failure " + r.LastFailure
		}
		if !r.Healthy {
			fmt.Printf("%-12s DOWN (%s)%s\n", r.Name, r.Cause, suffix)
			continue
		}
		fmt.Printf("%-12s ok %s model %s %dx%d/%d classes%s\n", r.Name,
			r.Health.APIVersion, r.Health.ModelDigest, r.Health.Targets, r.Health.Features, r.Health.Classes, suffix)
	}
	fmt.Printf("healthy %d/%d consistent %v\n", st.Healthy, len(st.Replicas), st.Consistent)
	if !st.Consistent {
		return fmt.Errorf("quantfleet: fleet is not consistent")
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "quantfleet:", err)
	os.Exit(1)
}
