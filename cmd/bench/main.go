// Command bench runs the repository's benchmark suite and writes the
// results as machine-readable JSON, so performance numbers can be committed,
// diffed across revisions, and plotted without scraping go test output.
//
// Usage:
//
//	bench [-bench regex] [-benchtime 1s] [-count 1] [-pkg ./...] [-out FILE]
//
// The default output file is BENCH_<yyyy-mm-dd>.json in the current
// directory. The JSON records the environment (go version, OS/arch, CPU
// count) and, per benchmark, the iteration count and every value/unit metric
// pair go test reported — including -benchmem allocation stats and custom
// b.ReportMetric values such as BenchmarkRun's simevents/op.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

var (
	benchRe   = flag.String("bench", ".", "benchmark name regex (go test -bench)")
	benchTime = flag.String("benchtime", "1s", "per-benchmark time or iteration budget (go test -benchtime)")
	count     = flag.Int("count", 1, "repetitions per benchmark (go test -count)")
	pkg       = flag.String("pkg", ".", "package pattern to benchmark")
	outPath   = flag.String("out", "", "output file (default BENCH_<date>.json)")
)

// Metric is one value/unit pair from a benchmark result line.
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the full JSON document.
type Report struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	OS         string   `json:"os"`
	Arch       string   `json:"arch"`
	CPUs       int      `json:"cpus"`
	Bench      string   `json:"bench_regex"`
	BenchTime  string   `json:"benchtime"`
	Count      int      `json:"count"`
	Package    string   `json:"package"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	flag.Parse()
	args := []string{
		"test", "-run", "^$",
		"-bench", *benchRe,
		"-benchmem",
		"-benchtime", *benchTime,
		"-count", strconv.Itoa(*count),
		*pkg,
	}
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fatal(fmt.Errorf("go test: %w", err))
	}
	results, err := parse(&out)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark results matched %q", *benchRe))
	}
	now := time.Now().UTC()
	rep := Report{
		Date:       now.Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Bench:      *benchRe,
		BenchTime:  *benchTime,
		Count:      *count,
		Package:    *pkg,
		Benchmarks: results,
	}
	path := *outPath
	if path == "" {
		path = "BENCH_" + now.Format("2006-01-02") + ".json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("bench: %d benchmarks -> %s\n", len(results), path)
}

// parse extracts benchmark result lines from go test output. A line looks
// like:
//
//	BenchmarkRun-8   2292   562245 ns/op   232.0 simevents/op   1519 allocs/op
//
// i.e. name, iteration count, then value/unit pairs.
func parse(r *bytes.Buffer) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{
			Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", runtime.GOMAXPROCS(0))),
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value in %q: %w", line, err)
			}
			res.Metrics[fields[i+1]] = v
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
