// Command quantpredict loads a framework trained by `quanttrain -save` and
// either scores a labelled dataset with it (offline batch prediction) or
// runs a fresh simulated scenario and predicts every live window — the
// deployment half of the paper's Figure 2. With -server it sends every
// prediction to a running quantserve instance instead of loading the
// framework locally.
//
// Usage:
//
//	quantpredict -framework fw.json -data dataset.json        # batch
//	quantpredict -framework fw.json -live ior-easy-write \
//	             -interference ior-easy-read -instances 3     # online
//	quantpredict -server http://localhost:8080 -data d.json   # remote
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/label"
	"quanterference/internal/lustre"
	"quanterference/internal/ml"
	"quanterference/internal/monitor/window"
	"quanterference/internal/serve"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
	"quanterference/internal/workload/registry"
)

var (
	fwPath    = flag.String("framework", "framework.json", "framework from quanttrain -save")
	server    = flag.String("server", "", "quantserve URL; predicts remotely instead of loading -framework")
	dataPath  = flag.String("data", "", "batch mode: dataset JSON to score")
	live      = flag.String("live", "", "online mode: target workload to run and predict")
	interf    = flag.String("interference", "", "online mode: interference workload")
	instances = flag.Int("instances", 2, "online mode: interference instances")
	ranks     = flag.Int("ranks", 4, "online mode: target ranks")
	duration  = flag.Float64("duration", 20, "online mode: simulated seconds")
	scale     = flag.Float64("scale", 1.0, "workload volume scale")
)

// predictor abstracts where predictions come from: a locally loaded
// framework or a remote quantserve instance.
type predictor struct {
	bins    label.Bins
	predict func(mat window.Matrix) (class int, probs []float64, err error)
}

func newLocalPredictor() (*predictor, error) {
	fw, err := core.LoadFramework(*fwPath)
	if err != nil {
		return nil, err
	}
	return &predictor{
		bins: fw.Bins,
		predict: func(mat window.Matrix) (int, []float64, error) {
			class, probs := fw.Predict(mat)
			return class, probs, nil
		},
	}, nil
}

func newServerPredictor(url string) (*predictor, error) {
	c := serve.NewClient(url)
	ctx := context.Background()
	h, err := c.Health(ctx)
	if err != nil {
		return nil, fmt.Errorf("server %s unreachable: %w", url, err)
	}
	return &predictor{
		bins: label.Bins{Thresholds: h.Thresholds},
		predict: func(mat window.Matrix) (int, []float64, error) {
			resp, err := c.Predict(ctx, mat)
			if err != nil {
				return 0, nil, err
			}
			return resp.Class, resp.Probs, nil
		},
	}, nil
}

func main() {
	flag.Parse()
	var (
		p   *predictor
		err error
	)
	if *server != "" {
		p, err = newServerPredictor(*server)
	} else {
		p, err = newLocalPredictor()
	}
	if err != nil {
		fatal(err)
	}
	switch {
	case *dataPath != "":
		batch(p)
	case *live != "":
		online(p)
	default:
		fatal(fmt.Errorf("pass -data (batch) or -live (online)"))
	}
}

// batch scores every sample and, since the dataset carries ground truth,
// prints the resulting confusion matrix.
func batch(p *predictor) {
	ds, err := dataset.Load(*dataPath)
	if err != nil {
		fatal(err)
	}
	if ds.Classes != p.bins.Classes() {
		ds = ds.Rebin(p.bins.Classes(), p.bins.Label)
	}
	cm := ml.NewConfusion(p.bins.Classes())
	for _, s := range ds.Samples {
		class, _, err := p.predict(s.Vectors)
		if err != nil {
			fatal(err)
		}
		cm.Add(s.Label, class)
	}
	names := make([]string, p.bins.Classes())
	for c := range names {
		names[c] = p.bins.Name(c)
	}
	fmt.Printf("scored %d windows from %s\n\n", ds.Len(), *dataPath)
	fmt.Print(cm.Render(names))
}

// online runs a fresh scenario and prints a prediction per window.
func online(p *predictor) {
	cl := core.NewCluster(lustre.PaperTopology(), lustre.Config{})
	gen, err := registry.Resolve(*live, registry.Spec{Dir: "/live", Ranks: *ranks, Scale: *scale})
	if err != nil {
		fatal(err)
	}
	mon := core.AttachLive(cl, sim.Second, func(idx int, mat window.Matrix) {
		class, probs, err := p.predict(mat)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("t=%3ds  %-6s p=%.2f\n", idx+1, p.bins.Name(class), probs[class])
	})
	target := &workload.Runner{
		FS: cl.FS, Name: *live, Nodes: []string{"c0", "c1"}, Ranks: *ranks,
		Gen: gen, Loop: true, OnRecord: mon.Record,
	}
	target.Start()
	if *interf != "" {
		for i := 0; i < *instances; i++ {
			igen, err := registry.Resolve(*interf, registry.Spec{
				Dir: fmt.Sprintf("/bg%d", i), Ranks: 6, Scale: *scale,
			})
			if err != nil {
				fatal(err)
			}
			bg := &workload.Runner{
				FS: cl.FS, Name: fmt.Sprintf("bg%d", i),
				Nodes: []string{"c2", "c3", "c4", "c5", "c6"}, Ranks: 6,
				Gen: igen, Loop: true,
			}
			bg.Start()
		}
	}
	cl.Eng.RunUntil(sim.Seconds(*duration))
	mon.Stop()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "quantpredict:", err)
	os.Exit(1)
}
