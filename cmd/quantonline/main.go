// Command quantonline demonstrates the continuous-learning pipeline end to
// end on the simulator: it trains an incumbent, serves it, replays a healthy
// window stream, injects fail-slow disks to force distribution drift,
// retrains a warm-started candidate, promotes it through the server's atomic
// hot-reload under concurrent load, and finally forces the evaluation gate
// impossible to demonstrate rejection with rollback.
//
// Usage:
//
//	quantonline -smoke [-seed 42] [-epochs 25] [-workers 2] [-gate-margin -2]
//
// The episode is deterministic: the same seed prints the same decision
// timeline and promotes bit-identical weights. `make online-smoke` runs it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"quanterference/internal/online"
)

var (
	smoke      = flag.Bool("smoke", false, "run the deterministic end-to-end smoke episode")
	seed       = flag.Int64("seed", 42, "episode seed (simulation, training, loop)")
	epochs     = flag.Int("epochs", 25, "epochs for initial training and every retrain")
	workers    = flag.Int("workers", 2, "parallel training workers (deterministic for any value)")
	gateMargin = flag.Float64("gate-margin", -2, "gate margin of the forced-reject phase (negative demands improvement; -2 rejects everything)")
	verbose    = flag.Bool("v", true, "print per-phase progress")
)

func main() {
	flag.Parse()
	if !*smoke {
		fmt.Fprintln(os.Stderr, "quantonline: only -smoke mode is implemented; see -h")
		os.Exit(2)
	}

	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, "quantonline: "+format+"\n", args...)
		}
	}
	res, err := online.SmokeEpisode(context.Background(), online.SmokeConfig{
		Seed:         *seed,
		Epochs:       *epochs,
		Workers:      *workers,
		RejectMargin: *gateMargin,
		Log:          logf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "quantonline:", err)
		os.Exit(1)
	}

	fmt.Printf("incumbent holdout accuracy: %.3f\n", res.TrainAccuracy)
	fmt.Printf("decisions (%d):\n", len(res.Timeline))
	for _, line := range res.Timeline {
		fmt.Println("  " + line)
	}
	fmt.Printf("drift trips=%d retrains=%d promotions=%d rejections=%d rollbacks=%d\n",
		res.DriftTrips, res.Retrains, res.Promotions, res.Rejections, res.Rollbacks)
	fmt.Printf("concurrent load during reloads: ok=%d shed=%d failed=%d\n",
		res.HammerOK, res.HammerShed, res.HammerErr)
	fmt.Println("smoke episode OK")
}
