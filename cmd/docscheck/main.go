// Command docscheck validates the repository's markdown documentation:
// every relative link target must exist on disk, and every internal/...
// package or file path mentioned in a document must exist in the tree, so
// docs cannot silently rot as code moves.
//
// Usage:
//
//	docscheck [root]
//
// root defaults to the current directory. Exits non-zero listing every
// broken reference.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links: [text](target).
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// pathRe matches internal/... path references in prose or code spans.
var pathRe = regexp.MustCompile(`\binternal/[A-Za-z0-9_/.-]+`)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var broken []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "out" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		broken = append(broken, checkFile(root, path)...)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(1)
	}
	if len(broken) > 0 {
		for _, b := range broken {
			fmt.Fprintln(os.Stderr, b)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d broken reference(s)\n", len(broken))
		os.Exit(1)
	}
	fmt.Println("docscheck: all markdown references resolve")
}

// checkFile returns a diagnostic line for every unresolvable reference in
// one markdown file.
func checkFile(root, path string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var broken []string
	lines := strings.Split(string(data), "\n")
	inFence := false
	for i, line := range lines {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skipLink(target) {
				continue
			}
			if frag := strings.IndexByte(target, '#'); frag >= 0 {
				target = target[:frag]
			}
			if target == "" {
				continue // pure fragment link within the same document
			}
			// Relative links resolve against the document's directory.
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				broken = append(broken, fmt.Sprintf("%s:%d: broken link %q", path, i+1, m[1]))
			}
		}
		if inFence {
			// Fenced blocks hold example output and hypothetical layouts;
			// only check path references in prose and inline code.
			continue
		}
		for _, ref := range pathRe.FindAllString(line, -1) {
			ref = strings.TrimRight(ref, ".,;:")
			if strings.Contains(ref, "...") {
				continue // wildcard like internal/... is a pattern, not a path
			}
			if _, err := os.Stat(filepath.Join(root, ref)); err != nil {
				broken = append(broken, fmt.Sprintf("%s:%d: missing path %q", path, i+1, ref))
			}
		}
	}
	return broken
}

// skipLink reports whether a link target is outside docscheck's scope:
// absolute URLs, mail links, and in-page anchors.
func skipLink(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
