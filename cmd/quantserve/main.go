// Command quantserve exposes a framework trained by `quanttrain -save` as a
// concurrent HTTP inference service — the deployment shape of the paper's
// Figure 2 runtime path. Concurrent /predict requests are transparently
// batched through one deterministic PredictBatch call; answers are
// bit-identical to standalone prediction regardless of batch composition.
//
// Usage:
//
//	quantserve -model fw.json -addr :8080
//	curl -s localhost:8080/predict -d '{"matrix": [[...], ...]}'
//
// SIGHUP (or POST /admin/reload) hot-swaps the model file without dropping
// in-flight requests; SIGINT/SIGTERM drain gracefully. -smoke trains a tiny
// synthetic model in-process and serves it — used by `make serve-smoke`.
//
// -forecast additionally serves a forecaster file (core.SaveForecaster /
// forecast.Save) on /forecast: POST a history of window matrices, get the
// predicted slowdown class per horizon plus the lead to degradation. -smoke
// trains a tiny forecaster too, so the smoke server answers both endpoints.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"quanterference/internal/core"
	"quanterference/internal/dataset"
	"quanterference/internal/forecast"
	"quanterference/internal/ml"
	"quanterference/internal/serve"
	"quanterference/internal/sim"
)

var (
	model       = flag.String("model", "framework.json", "framework file from quanttrain -save")
	forecastF   = flag.String("forecast", "", "optional forecaster file; enables /forecast")
	addr        = flag.String("addr", ":8080", "listen address")
	maxBatch    = flag.Int("max-batch", 32, "max predictions per batch")
	batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "how long to gather a batch")
	maxInflight = flag.Int("max-inflight", 256, "queue bound before requests are shed with 503")
	smoke       = flag.Bool("smoke", false, "serve a tiny synthetic model (ignores -model; for smoke tests)")
)

func main() {
	flag.Parse()

	var (
		fw  *core.Framework
		fc  *forecast.Forecaster
		err error
	)
	if *smoke {
		if fw, err = smokeFramework(); err == nil {
			fc, err = smokeForecaster()
		}
	} else {
		fw, err = core.LoadFramework(*model)
		if err == nil && *forecastF != "" {
			fc, err = forecast.Load(*forecastF)
		}
	}
	if err != nil {
		fatal(err)
	}

	s := serve.New(fw, serve.Config{
		MaxBatch:    *maxBatch,
		BatchWindow: *batchWindow,
		MaxInflight: *maxInflight,
		ModelPath:   *model,
		Forecaster:  fc,
	})
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := s.Reload(""); err != nil {
				fmt.Fprintln(os.Stderr, "quantserve: reload:", err)
				continue
			}
			fmt.Fprintln(os.Stderr, "quantserve: reloaded", *model)
		}
	}()

	term := make(chan os.Signal, 1)
	signal.Notify(term, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-term
		fmt.Fprintln(os.Stderr, "quantserve: draining...")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// Stop accepting connections first, then drain the batcher.
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "quantserve: http shutdown:", err)
		}
		if err := s.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "quantserve: batcher shutdown:", err)
		}
	}()

	nT, nF := fw.Dims()
	fmt.Fprintf(os.Stderr, "quantserve: serving %d-target x %d-feature model (%d classes) on %s\n",
		nT, nF, fw.Classes(), *addr)
	if fc != nil {
		fmt.Fprintf(os.Stderr, "quantserve: forecasting over %d-window history at horizons %v\n",
			fc.History, fc.Horizons())
	}
	if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

// smokeFramework trains a minimal synthetic framework so the serving path
// can be exercised end to end without a model file or a simulator run.
func smokeFramework() (*core.Framework, error) {
	const nTargets, nFeat = 3, 5
	names := make([]string, nFeat)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	ds := dataset.New(names, nTargets, 2)
	rng := sim.NewRNG(1)
	for i := 0; i < 64; i++ {
		vecs := make([][]float64, nTargets)
		for t := range vecs {
			v := make([]float64, nFeat)
			for f := range v {
				v[f] = rng.NormFloat64() + float64(i%2)
			}
			vecs[t] = v
		}
		ds.Add(&dataset.Sample{Label: i % 2, Degradation: 1, Vectors: vecs})
	}
	fw, _, err := core.TrainFrameworkE(ds, core.FrameworkConfig{Seed: 1, Train: ml.TrainConfig{Epochs: 5}})
	return fw, err
}

// smokeForecaster trains a minimal forecaster over the same 3x5 window shape
// as smokeFramework: a few synthetic runs of consecutive windows whose
// features drift upward until the back third degrades.
func smokeForecaster() (*forecast.Forecaster, error) {
	const nTargets, nFeat, runs, windows = 3, 5, 4, 16
	names := make([]string, nFeat)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	ds := dataset.New(names, nTargets, 2)
	rng := sim.NewRNG(2)
	for r := 0; r < runs; r++ {
		for w := 0; w < windows; w++ {
			degraded := w >= 2*windows/3
			vecs := make([][]float64, nTargets)
			for t := range vecs {
				v := make([]float64, nFeat)
				for f := range v {
					v[f] = 0.2*float64(w) + rng.NormFloat64()
					if degraded {
						v[f] += 3
					}
				}
				vecs[t] = v
			}
			s := &dataset.Sample{
				Workload: "smoke", Run: fmt.Sprintf("r%d", r), Window: w,
				Degradation: 1, Vectors: vecs,
			}
			if degraded {
				s.Label, s.Degradation = 1, 3
			}
			ds.Add(s)
		}
	}
	fc, _, err := core.TrainForecasterCtx(context.Background(), ds, core.ForecasterConfig{
		Forecast: forecast.Config{History: 3, Horizons: []int{1, 2}},
		Train:    ml.TrainConfig{Epochs: 5},
		Seed:     2,
	})
	return fc, err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "quantserve:", err)
	os.Exit(1)
}
