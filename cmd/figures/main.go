// Command figures regenerates every table and figure of the paper's
// evaluation on the simulated cluster, writing both a human-readable
// rendering (stdout + .txt) and CSV files for plotting.
//
// Usage:
//
//	figures [-only table1|fig1a|fig1b|table2|fig3a|fig3b|fig4|fig5|ablation|transfer|leadtime|mitigation|shadow]
//	        [-scale 1.0] [-epochs 60] [-seed 42] [-reps 0] [-out out/]
//	        [-profiles paper,nvme,fastnic] [-pprof localhost:6060]
//
// -pprof serves net/http/pprof profiles and a /metrics runtime-metrics dump
// on the given address while the experiments run.
//
// With no -only flag every experiment runs in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"quanterference/internal/dataset"
	"quanterference/internal/experiments"
	"quanterference/internal/label"
	"quanterference/internal/obs"
)

var (
	only     = flag.String("only", "", "run a single experiment (table1, fig1a, fig1b, table2, fig3a, fig3b, fig4, fig5, ablation, extensions, casestudy, phases, robustness, transfer, leadtime, mitigation, shadow)")
	scale    = flag.Float64("scale", 1.0, "workload volume scale factor")
	epochs   = flag.Int("epochs", 60, "training epochs for model experiments")
	seed     = flag.Int64("seed", 42, "root random seed")
	reps     = flag.Int("reps", 0, "dataset collection repetitions (0 = experiment default)")
	outDir   = flag.String("out", "out", "output directory for .txt/.csv files")
	profiles = flag.String("profiles", "paper,nvme,fastnic", "comma-separated hardware profiles for the transfer study")
	pprofA   = flag.String("pprof", "", "serve net/http/pprof and /metrics on this address (e.g. localhost:6060)")
)

func main() {
	flag.Parse()
	if *pprofA != "" {
		go func() {
			if err := obs.ServeDebug(*pprofA); err != nil {
				fmt.Fprintln(os.Stderr, "figures: pprof:", err)
			}
		}()
		fmt.Printf("pprof + /metrics on http://%s/debug/pprof/\n", *pprofA)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	sel := strings.ToLower(*only)
	want := func(name string) bool { return sel == "" || sel == name }
	s := experiments.Scale(*scale)
	dcfg := experiments.DatasetConfig{Scale: s, Seed: *seed}

	if want("table1") {
		step("Table I: IO500 slowdown matrix", func() {
			r := experiments.TableI(experiments.TableIConfig{Scale: s})
			emit("table1", r.Render(), r.CSV())
			write("table1.svg", r.SVG())
			task, interf, v := r.MaxCell()
			fmt.Printf("  most impacted: %s under %s (%.1fx)\n", task, interf, v)
		})
	}
	if want("fig1a") {
		step("Figure 1(a): Enzo op latency vs interference level", func() {
			r := experiments.Figure1a(experiments.Figure1Config{Scale: s})
			emit("fig1a", r.Render(), r.CSV())
			write("fig1a.svg", r.SVG())
		})
	}
	if want("fig1b") {
		step("Figure 1(b): Enzo op latency vs interference type", func() {
			r := experiments.Figure1b(experiments.Figure1Config{Scale: s})
			emit("fig1b", r.Render(), r.CSV())
			write("fig1b.svg", r.SVG())
		})
	}
	if want("table2") {
		step("Table II: server-side metrics", func() {
			r := experiments.TableII(s)
			emit("table2", r.Render(), r.CSV())
		})
	}
	var io500ds *dataset.Dataset
	if want("fig3a") || want("fig4") || want("ablation") || want("extensions") || want("robustness") || want("shadow") {
		step("collecting IO500 dataset", func() {
			io500ds = experiments.IO500Dataset(dcfg)
			fmt.Printf("  %d samples, class balance %v\n", io500ds.Len(), io500ds.ClassCounts())
		})
	}
	if want("fig3a") {
		step("Figure 3(a): IO500 binary prediction", func() {
			ev := experiments.TrainEval("Figure 3(a) IO500 binary", io500ds, label.BinaryBins(), *epochs, *seed)
			emit("fig3a", ev.Render(), ev.CSV())
			write("fig3a.svg", ev.SVG())
		})
	}
	if want("fig3b") {
		step("Figure 3(b): DLIO binary prediction", func() {
			ev := experiments.Figure3b(dcfg, *epochs)
			emit("fig3b", ev.Render(), ev.CSV())
			write("fig3b.svg", ev.SVG())
		})
	}
	if want("fig4") {
		step("Figure 4: IO500 3-class prediction", func() {
			ev := experiments.Figure4From(io500ds, dcfg, *epochs)
			emit("fig4", ev.Render(), ev.CSV())
			write("fig4.svg", ev.SVG())
		})
	}
	if want("fig5") {
		step("Figure 5: AMReX / Enzo / OpenPMD prediction", func() {
			var txt, csv strings.Builder
			for i, ev := range experiments.Figure5(dcfg, *epochs) {
				txt.WriteString(ev.Render() + "\n")
				csv.WriteString("# " + ev.Name + "\n" + ev.CSV())
				write(fmt.Sprintf("fig5_%d.svg", i), ev.SVG())
			}
			emit("fig5", txt.String(), csv.String())
		})
	}
	if want("ablation") {
		step("Ablations: architecture, feature groups, window size", func() {
			arch := experiments.AblationArchitecture(io500ds, dcfg, *epochs)
			emit("ablation_architecture", arch.Render(), arch.CSV())
			feats := experiments.AblationFeatures(io500ds, dcfg, *epochs)
			emit("ablation_features", feats.Render(), feats.CSV())
			win := experiments.AblationWindow(dcfg, *epochs, nil)
			emit("ablation_window", win.Render(), win.CSV())
		})
	}
	if want("phases") {
		step("Phase study: per-phase slowdown of a multi-phase app", func() {
			r := experiments.PhaseStudy(experiments.PhaseStudyConfig{Scale: s})
			emit("phases", r.Render(), r.CSV())
		})
	}
	if want("casestudy") {
		step("Case study: prediction-driven mitigation", func() {
			r := experiments.CaseStudyMitigation(experiments.CaseStudyConfig{
				Scale: s, Epochs: *epochs, Seed: *seed,
			})
			emit("casestudy", r.Render(), r.CSV())
		})
	}
	if want("robustness") {
		step("Robustness: accuracy/F1 across seeds", func() {
			r := experiments.Robustness(io500ds, label.BinaryBins(), *epochs, 5, *seed)
			emit("robustness", r.Render(), r.CSV())
		})
	}
	if want("transfer") {
		step("Transfer: cross-profile model transfer", func() {
			r := experiments.TransferStudy(experiments.TransferConfig{
				Profiles: strings.Split(*profiles, ","),
				Scale:    s,
				Epochs:   *epochs,
				Seed:     *seed,
			})
			emit("transfer", r.Render(), r.CSV())
		})
	}
	if want("leadtime") {
		step("Lead time: forecast accuracy vs prediction horizon", func() {
			r := experiments.LeadTimeStudy(experiments.LeadTimeConfig{
				Profiles: strings.Split(*profiles, ","),
				Scale:    s,
				Epochs:   *epochs,
				Seed:     *seed,
			})
			emit("leadtime", r.Render(), r.CSV())
		})
	}
	if want("mitigation") {
		step("Mitigation: policy × fault × workload actuation study", func() {
			r := experiments.MitigationStudy(experiments.MitigationConfig{
				Scale:  s,
				Reps:   *reps,
				Epochs: *epochs,
				Seed:   *seed,
			})
			emit("mitigation", r.Render(), r.CSV())
			if !r.ProactiveMatchesReactive() {
				fmt.Println("  WARNING: proactive policy never matched reactive slowdown-avoided")
			}
		})
	}
	if want("shadow") {
		step("Shadow: N-way champion/challenger gate on a live stream", func() {
			r := experiments.ShadowStudy(io500ds, experiments.ShadowStudyConfig{Seed: *seed})
			emit("shadow", r.Render(), r.CSV())
			winner := r.Winner
			if winner == "" {
				winner = "champion (kept)"
			}
			fmt.Printf("  gate winner: %s\n", winner)
		})
	}
	if want("extensions") {
		step("Extensions: attention architecture, exact-slowdown regression", func() {
			arch := experiments.ExtensionArchitectures(io500ds, dcfg, *epochs)
			emit("extension_architectures", arch.Render(), arch.CSV())
			reg := experiments.ExtensionRegression(io500ds, dcfg, *epochs)
			emit("extension_regression", reg.Render(), reg.CSV())
		})
	}
	fmt.Printf("done; outputs in %s/\n", *outDir)
}

func step(name string, fn func()) {
	fmt.Printf("== %s\n", name)
	start := time.Now()
	fn()
	fmt.Printf("   (%.1fs)\n", time.Since(start).Seconds())
}

func emit(name, txt, csv string) {
	fmt.Print(indent(txt))
	write(name+".txt", txt)
	write(name+".csv", csv)
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "  " + strings.Join(lines, "\n  ") + "\n"
}

func write(name, content string) {
	if err := os.WriteFile(filepath.Join(*outDir, name), []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "figures:", err)
	os.Exit(1)
}
