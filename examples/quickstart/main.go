// Quickstart: simulate a small cluster, measure a workload with and without
// interference, collect a labelled dataset, train the interference
// predictor, and classify a fresh window — the whole pipeline in one file.
package main

import (
	"fmt"
	"log"

	quant "quanterference"
	"quanterference/internal/core"
	"quanterference/internal/sim"
	"quanterference/internal/workload/io500"
)

func main() {
	// The target application: an IOR-easy-style writer on two ranks.
	target := quant.TargetSpec{
		Gen: io500.New(io500.IorEasyWrite, io500.Params{
			Dir: "/app", Ranks: 2, EasyFileBytes: 48 << 20,
		}),
		Nodes: []string{"c0"},
		Ranks: 2,
	}

	// 1. How long does it run alone vs against three competing readers?
	base, err := quant.RunE(quant.Scenario{Target: target})
	if err != nil {
		log.Fatal(err)
	}
	interference := []quant.InterferenceSpec{}
	for i := 0; i < 3; i++ {
		interference = append(interference, quant.InterferenceSpec{
			Gen: io500.New(io500.IorEasyRead, io500.Params{
				Dir: fmt.Sprintf("/bg%d", i), Ranks: 6, EasyFileBytes: 16 << 20,
			}),
			Nodes: []string{"c1", "c2", "c3"},
			Ranks: 6,
		})
	}
	contended, err := quant.RunE(quant.Scenario{Target: target, Interference: interference})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standalone: %.2fs   under interference: %.2fs   slowdown: %.1fx\n",
		sim.ToSeconds(base.Duration), sim.ToSeconds(contended.Duration),
		float64(contended.Duration)/float64(base.Duration))

	// 2. Collect a labelled dataset: the same target against a few
	// interference intensities (§III-D).
	var variants []quant.Variant
	for _, n := range []int{0, 1, 2, 3} {
		v := quant.Variant{Name: fmt.Sprintf("level%d", n)}
		for i := 0; i < n; i++ {
			v.Interference = append(v.Interference, core.InterferenceSpec{
				Gen: io500.New(io500.IorEasyRead, io500.Params{
					Dir: fmt.Sprintf("/l%d-%d", n, i), Ranks: 6, EasyFileBytes: 16 << 20,
				}),
				Nodes: []string{"c1", "c2", "c3"},
				Ranks: 6,
			})
		}
		variants = append(variants, v)
	}
	ds, err := quant.CollectDatasetE(quant.Scenario{Target: target}, variants,
		quant.CollectorConfig{IncludeBaseline: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d labelled windows, class balance %v\n",
		ds.Len(), ds.ClassCounts())

	// 3. Train the kernel-based model (80/20 split) and inspect accuracy.
	fw, confusion, err := quant.TrainFrameworkE(ds, quant.FrameworkConfig{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out accuracy: %.2f\n", confusion.Accuracy())

	// 4. Classify a window the model has never seen.
	sample := ds.Samples[len(ds.Samples)-1]
	class, probs := fw.Predict(sample.Vectors)
	fmt.Printf("window %d of run %q -> predicted %s (p=%.2f), true degradation %.1fx\n",
		sample.Window, sample.Run, quant.BinaryBins().Name(class), probs[class],
		sample.Degradation)
}
