// DLIO training: reproduce the paper's second dataset end to end — emulate
// Unet3D and BERT data-loader I/O under an interference sweep, collect the
// labelled windows, and train/evaluate the binary interference predictor
// (Figure 3(b)).
package main

import (
	"fmt"
	"log"

	quant "quanterference"
	"quanterference/internal/experiments"
	"quanterference/internal/ml"
)

func main() {
	cfg := experiments.DatasetConfig{Scale: 0.5, Seed: 21, Reps: 2}

	fmt.Println("emulating DLIO (Unet3D + BERT) under the interference sweep...")
	ds := experiments.DLIODataset(cfg)
	counts := ds.ClassCounts()
	fmt.Printf("dataset: %d windows, %d negative / %d positive (the paper's "+
		"DLIO set skews negative: loaders spend much time computing)\n\n",
		ds.Len(), counts[0], counts[1])

	fmt.Println("training the kernel-based model (80/20 split)...")
	_, confusion, err := quant.TrainFrameworkE(ds, quant.FrameworkConfig{
		Seed: 21,
		Train: ml.TrainConfig{
			Epochs: 60,
			OnEpoch: func(e int, loss float64) {
				if (e+1)%15 == 0 {
					fmt.Printf("  epoch %2d  loss %.4f\n", e+1, loss)
				}
			},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(confusion.Render([]string{"<2x", ">=2x"}))
	fmt.Printf("\npositive-class F1: %.3f\n", confusion.F1(1))
}
