// Live prediction: train the interference predictor offline, then attach it
// to a running cluster and classify every time window online while an
// Enzo-like application runs under shifting interference — the runtime path
// of the paper's Figure 2.
package main

import (
	"fmt"
	"log"

	quant "quanterference"
	"quanterference/internal/experiments"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
	"quanterference/internal/workload/apps"
	"quanterference/internal/workload/io500"
)

func main() {
	// Offline phase: collect the Enzo dataset and train the framework.
	fmt.Println("collecting training data (Enzo under IO500 interference sweeps)...")
	// Train at the same workload scale the live application runs at —
	// like the paper, the model is trained on the application it serves.
	ds := experiments.AppDataset(apps.Enzo, experiments.DatasetConfig{
		Scale: 1, Seed: 11, Reps: 2,
	})
	fmt.Printf("dataset: %d windows, balance %v\n", ds.Len(), ds.ClassCounts())
	fw, confusion, err := quant.TrainFrameworkE(ds, quant.FrameworkConfig{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline test accuracy: %.2f\n\n", confusion.Accuracy())

	// Online phase: fresh cluster, live monitors, per-window prediction.
	cl := quant.NewCluster(quant.PaperTopology(), quant.Config{})
	window := quant.Seconds(1)
	bins := quant.BinaryBins()

	mon := quant.AttachLive(cl, window, func(idx int, mat quant.WindowMatrix) {
		class, probs := fw.Predict(mat)
		bar := ""
		for i := 0; i < int(probs[class]*20); i++ {
			bar += "#"
		}
		fmt.Printf("t=%3ds  predicted %-5s p=%.2f %s\n",
			idx+1, bins.Name(class), probs[class], bar)
	})

	// The measured application.
	// The live application mirrors the training configuration (same rank
	// count and checkpoint size), as §IV-C trains per application.
	enzo := &workload.Runner{
		FS:   cl.FS,
		Name: "enzo",
		Gen: apps.New(apps.Enzo, apps.Params{
			// Enough cycles to keep writing for the whole 16 s demo.
			Dir: "/live-enzo", Ranks: 4, Cycles: 60, CheckpointBytes: 8 << 20,
		}),
		Nodes:    []string{"c0", "c1"},
		Ranks:    4,
		OnRecord: mon.Record,
	}
	enzo.Start()

	// Interference arrives mid-run: the same mixed IO500 load the model
	// was trained against (2 instances each of writes, reads, metadata).
	cl.Eng.Schedule(quant.Seconds(4), func() {
		fmt.Println("--- interference arrives (2x each: ior-easy-write, ior-easy-read, mdt-easy-write) ---")
		tasks := []io500.Task{io500.IorEasyWrite, io500.IorEasyRead, io500.MdtEasyWrite}
		for i, task := range tasks {
			for j := 0; j < 2; j++ {
				bg := &workload.Runner{
					FS:   cl.FS,
					Name: fmt.Sprintf("bg%d-%d", i, j),
					Gen: io500.New(task, io500.Params{
						Dir: fmt.Sprintf("/live-bg%d-%d", i, j), Ranks: 6,
						EasyFileBytes: 32 << 20, MdtFiles: 200,
					}),
					Nodes: []string{"c2", "c3", "c4"},
					Ranks: 6,
					Loop:  true,
				}
				bg.Start()
				bgStops = append(bgStops, bg.Stop)
			}
		}
	})

	cl.Eng.RunUntil(quant.Seconds(16))
	for _, stop := range bgStops {
		stop()
	}
	mon.Stop()
	fmt.Printf("\nsimulated %.0fs of runtime prediction\n", sim.ToSeconds(cl.Eng.Now()))
}

var bgStops []func()
