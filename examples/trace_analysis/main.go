// Trace analysis: the paper's offline labelling workflow on persisted
// traces. Run a workload twice — alone and under interference — writing
// DXT-style trace logs for both, then reload the logs, match operations
// between them, and compute per-window degradation levels (§III-D's
// ground-truth labels).
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	quant "quanterference"
	"quanterference/internal/label"
	"quanterference/internal/sim"
	"quanterference/internal/trace"
	"quanterference/internal/workload"
	"quanterference/internal/workload/io500"
)

func main() {
	dir, err := os.MkdirTemp("", "quant-traces")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)

	target := quant.TargetSpec{
		Gen: io500.New(io500.IorEasyWrite, io500.Params{
			Dir: "/app", Ranks: 2, EasyFileBytes: 48 << 20,
		}),
		Nodes: []string{"c0"},
		Ranks: 2,
	}

	// 1. Baseline and interfered runs, each dumped as a trace log.
	baseRes, err := quant.RunE(quant.Scenario{Target: target})
	if err != nil {
		fail(err)
	}
	basePath := writeTrace(filepath.Join(dir, "baseline.dxt"), baseRes.Records)
	var interference []quant.InterferenceSpec
	for i := 0; i < 3; i++ {
		interference = append(interference, quant.InterferenceSpec{
			Gen: io500.New(io500.IorEasyRead, io500.Params{
				Dir: fmt.Sprintf("/bg%d", i), Ranks: 6, EasyFileBytes: 16 << 20,
			}),
			Nodes: []string{"c1", "c2", "c3"},
			Ranks: 6,
		})
	}
	contRes, err := quant.RunE(quant.Scenario{Target: target, Interference: interference})
	if err != nil {
		fail(err)
	}
	contPath := writeTrace(filepath.Join(dir, "contended.dxt"), contRes.Records)

	// 2. Reload the logs — this is where a real deployment would pick up,
	// with traces gathered on different days.
	baseRecs := readTrace(basePath)
	contRecs := readTrace(contPath)
	fmt.Printf("loaded %d baseline and %d contended records\n", len(baseRecs), len(contRecs))

	// 3. Match ops and compute per-window degradations.
	labeler := label.New(baseRecs, sim.Second, 3)
	fmt.Printf("matched %d/%d contended ops to the baseline\n",
		labeler.Matched(contRecs), len(contRecs))
	degs := labeler.Degradations(contRecs)
	bins := quant.SeverityBins()
	windows := make([]int, 0, len(degs))
	for w := range degs {
		windows = append(windows, w)
	}
	sort.Ints(windows)
	fmt.Println("\nwindow  degradation  class")
	for _, w := range windows {
		fmt.Printf("%6d  %10.1fx  %s\n", w, degs[w], bins.Name(bins.Label(degs[w])))
	}
}

func writeTrace(path string, recs []workload.Record) string {
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	w := trace.NewWriter(f)
	for _, rec := range recs {
		w.Write(rec)
	}
	if err := w.Flush(); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	return path
}

func readTrace(path string) []workload.Record {
	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	recs, err := trace.Read(f)
	if err != nil {
		fail(err)
	}
	return recs
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "trace_analysis:", err)
	os.Exit(1)
}
