// Fail-slow detection: a generalization probe. The predictor is trained
// only on cross-application interference (§III-D), yet a fail-slow OST — a
// disk serving requests correctly but several times slower, the phenomenon
// behind the paper's severity bins (Lu et al., Perseus) — produces the same
// server-side signature (inflated queue times under normal client load).
// This example trains the model on interference data, then injects an
// 8x-degraded disk mid-run with NO external interference at all, and shows
// the per-window predictions flipping.
package main

import (
	"fmt"
	"log"

	quant "quanterference"
	"quanterference/internal/experiments"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
	"quanterference/internal/workload/io500"
)

func main() {
	// Train on interference only.
	fmt.Println("training on cross-application interference data...")
	ds := experiments.IO500Dataset(experiments.DatasetConfig{Scale: 0.5, Seed: 31, Reps: 2})
	fw, cm, err := quant.TrainFrameworkE(ds, quant.FrameworkConfig{Seed: 31})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %d windows; held-out accuracy %.2f\n\n", ds.Len(), cm.Accuracy())

	// A quiet cluster: one writer, zero interference.
	cl := quant.NewCluster(quant.PaperTopology(), quant.Config{})
	bins := quant.BinaryBins()
	mon := quant.AttachLive(cl, quant.Seconds(1), func(idx int, mat quant.WindowMatrix) {
		class, probs := fw.Predict(mat)
		marker := ""
		if class == 1 {
			marker = "  <-- flagged"
		}
		fmt.Printf("t=%3ds  predicted %-5s p=%.2f%s\n", idx+1, bins.Name(class), probs[class], marker)
	})

	gen := io500.New(io500.IorEasyWrite, io500.Params{
		Dir: "/app", Ranks: 2, EasyFileBytes: 512 << 20, // long-running writer
	})
	app := &workload.Runner{
		FS: cl.FS, Name: "app", Nodes: []string{"c0"}, Ranks: 2,
		Gen: gen, OnRecord: mon.Record,
	}
	app.Start()

	// The fail-slow condition strikes the writer's OSTs at t=2s and heals
	// at t=8s.
	cl.Eng.Schedule(quant.Seconds(2), func() {
		fmt.Println("--- ost0+ost1 degrade 8x (fail-slow), no interference anywhere ---")
		cl.FS.InjectFailSlow(0, 8)
		cl.FS.InjectFailSlow(1, 8)
	})
	cl.Eng.Schedule(quant.Seconds(8), func() {
		fmt.Println("--- disks healed ---")
		cl.FS.InjectFailSlow(0, 1)
		cl.FS.InjectFailSlow(1, 1)
	})

	cl.Eng.RunUntil(quant.Seconds(12))
	mon.Stop()
	fmt.Printf("\nsimulated %.0fs; the interference-trained model doubles as a "+
		"fail-slow detector because both conditions share the queue-time signature\n",
		sim.ToSeconds(cl.Eng.Now()))
}
