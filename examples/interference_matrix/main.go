// Interference matrix: measure how a custom set of workloads slow each
// other down, Table I style — every workload run standalone and against
// every other as looping background noise.
package main

import (
	"fmt"
	"log"

	quant "quanterference"
	"quanterference/internal/sim"
	"quanterference/internal/workload"
	"quanterference/internal/workload/apps"
	"quanterference/internal/workload/dlio"
	"quanterference/internal/workload/io500"
)

// entry is one workload in the matrix.
type entry struct {
	name string
	gen  func(dir string) workload.Generator
}

func main() {
	table := []entry{
		{"checkpoint (enzo)", func(dir string) workload.Generator {
			return apps.New(apps.Enzo, apps.Params{Dir: dir, Ranks: 2, Cycles: 4})
		}},
		{"training (unet3d)", func(dir string) workload.Generator {
			return dlio.New(dlio.Unet3D, dlio.Params{Dir: dir, Ranks: 2, Samples: 16, Epochs: 1})
		}},
		{"scratch writes (ior)", func(dir string) workload.Generator {
			return io500.New(io500.IorEasyWrite, io500.Params{Dir: dir, Ranks: 2, EasyFileBytes: 32 << 20})
		}},
		{"file sweep (mdtest)", func(dir string) workload.Generator {
			return io500.New(io500.MdtHardWrite, io500.Params{Dir: dir, Ranks: 2, MdtFiles: 150})
		}},
	}

	fmt.Printf("%-22s", "workload\\noise")
	for _, col := range table {
		fmt.Printf("%22s", col.name)
	}
	fmt.Println()
	for _, row := range table {
		base := run(row, nil)
		fmt.Printf("%-22s", row.name)
		for _, col := range table {
			contended := run(row, &col)
			fmt.Printf("%21.2fx", float64(contended)/float64(base))
		}
		fmt.Printf("   (solo %.2fs)\n", sim.ToSeconds(base))
	}
}

// run measures the row workload, optionally against 2 looping instances of
// the column workload on the other nodes.
func run(row entry, noise *entry) sim.Time {
	s := quant.Scenario{
		Target: quant.TargetSpec{
			Gen:   row.gen("/target"),
			Nodes: []string{"c0", "c1"},
			Ranks: 2,
		},
		MaxTime: quant.Seconds(240),
	}
	if noise != nil {
		for i := 0; i < 2; i++ {
			s.Interference = append(s.Interference, quant.InterferenceSpec{
				Gen:   noise.gen(fmt.Sprintf("/noise%d", i)),
				Nodes: []string{"c2", "c3", "c4"},
				Ranks: 2, // matches the generators' Params.Ranks
			})
		}
	}
	res, err := quant.RunE(s)
	if err != nil {
		log.Fatal(err)
	}
	return res.Duration
}
