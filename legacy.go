package quanterference

// This file holds the original panic-on-error entry points, kept as thin
// wrappers so existing callers build unchanged. New code should use the
// error-returning forms (RunE, CollectDatasetE, TrainFrameworkE) or the
// context-aware forms (RunCtx, CollectDatasetCtx, TrainFrameworkCtx).
//
// None of the package's functional options (see the Options section in
// quanterference.go) apply here — these wrappers take no Option parameters.
// Callers that need WithSink, WithHardware, or any other option must use the
// error-returning forms; setting Scenario.Hardware directly is the only way
// to select a hardware profile through these wrappers.

import "quanterference/internal/core"

// Run executes a scenario on a fresh cluster.
//
// Deprecated: Run panics on invalid scenarios. Use RunE, which returns
// typed errors (ErrInvalidScenario, ErrInvalidTopology), or RunCtx for
// cancellation.
func Run(s Scenario) *RunResult { return core.Run(s) }

// CollectDataset implements the paper's §III-D data generation.
//
// Deprecated: CollectDataset panics when the baseline does not finish. Use
// CollectDatasetE, which returns typed errors (ErrBaselineUnfinished,
// ErrAllVariantsFailed), or CollectDatasetCtx for cancellation.
func CollectDataset(base Scenario, variants []Variant, cfg CollectorConfig) *Dataset {
	return core.CollectDataset(base, variants, cfg)
}

// TrainFramework trains the kernel-based model with the paper's 80/20 split
// and returns the framework plus the held-out confusion matrix.
//
// Deprecated: TrainFramework panics on empty datasets. Use TrainFrameworkE,
// which returns ErrEmptyDataset, or TrainFrameworkCtx for cancellation.
func TrainFramework(ds *Dataset, cfg FrameworkConfig) (*Framework, *Confusion) {
	return core.TrainFramework(ds, cfg)
}
