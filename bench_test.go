// Benchmarks regenerating each of the paper's tables and figures at reduced
// scale (one bench per evaluation element; cmd/figures runs them full size),
// plus micro-benchmarks of the substrates. Run:
//
//	go test -bench=. -benchmem
package quanterference_test

import (
	"fmt"
	"strings"
	"testing"

	quant "quanterference"
	"quanterference/internal/bb"
	"quanterference/internal/dataset"
	"quanterference/internal/disk"
	"quanterference/internal/experiments"
	"quanterference/internal/forecast"
	"quanterference/internal/label"
	"quanterference/internal/lustre"
	"quanterference/internal/mitigate"
	"quanterference/internal/ml"
	"quanterference/internal/netsim"
	"quanterference/internal/online"
	"quanterference/internal/sim"
	"quanterference/internal/trace"
	"quanterference/internal/workload"
	"quanterference/internal/workload/io500"
)

// benchScale keeps each iteration around a second.
const benchScale = experiments.Scale(0.15)

// BenchmarkTableI regenerates the IO500 slowdown matrix (Table I).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TableI(experiments.TableIConfig{
			Scale: benchScale, Instances: 2, RanksPerInstance: 3, TargetRanks: 2,
		})
		if len(r.Tasks) != 7 {
			b.Fatal("bad matrix")
		}
	}
}

// BenchmarkFigure1a regenerates the Enzo interference-level series.
func BenchmarkFigure1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure1a(experiments.Figure1Config{Scale: benchScale, Cycles: 3})
		if len(r.Labels) != 4 {
			b.Fatal("bad series")
		}
	}
}

// BenchmarkFigure1b regenerates the Enzo interference-type series.
func BenchmarkFigure1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure1b(experiments.Figure1Config{Scale: benchScale, Cycles: 3})
		if len(r.Labels) != 3 {
			b.Fatal("bad series")
		}
	}
}

// BenchmarkTableII regenerates the server-side metric capture.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TableII(benchScale)
		if len(r.Values) != 7 {
			b.Fatal("bad metrics")
		}
	}
}

func benchDatasetCfg() experiments.DatasetConfig {
	return experiments.DatasetConfig{Scale: benchScale, Seed: 42, Reps: 1}
}

// BenchmarkFigure3aIO500 collects the IO500 dataset and trains the binary
// model (Figure 3a).
func BenchmarkFigure3aIO500(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := experiments.Figure3a(benchDatasetCfg(), 20)
		if ev.Confusion.Total() == 0 {
			b.Fatal("empty eval")
		}
	}
}

// BenchmarkFigure3bDLIO collects the DLIO dataset and trains the binary
// model (Figure 3b).
func BenchmarkFigure3bDLIO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := experiments.Figure3b(benchDatasetCfg(), 20)
		if ev.Confusion.Total() == 0 {
			b.Fatal("empty eval")
		}
	}
}

// BenchmarkFigure4MultiClass trains the 3-class model (Figure 4).
func BenchmarkFigure4MultiClass(b *testing.B) {
	cfg := benchDatasetCfg()
	ds := experiments.IO500Dataset(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := experiments.Figure4From(ds, cfg, 20)
		if len(ev.ClassNames) != 3 {
			b.Fatal("bad classes")
		}
	}
}

// BenchmarkFigure5Apps trains the per-application models (Figure 5).
func BenchmarkFigure5Apps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		evs := experiments.Figure5(benchDatasetCfg(), 20)
		if len(evs) != 3 {
			b.Fatal("bad panels")
		}
	}
}

// BenchmarkAblationArchitecture compares kernel vs flat models.
func BenchmarkAblationArchitecture(b *testing.B) {
	cfg := benchDatasetCfg()
	ds := experiments.IO500Dataset(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.AblationArchitecture(ds, cfg, 15)
		if len(r.Evals) != 2 {
			b.Fatal("bad ablation")
		}
	}
}

// BenchmarkAblationFeatures compares feature groups.
func BenchmarkAblationFeatures(b *testing.B) {
	cfg := benchDatasetCfg()
	ds := experiments.IO500Dataset(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.AblationFeatures(ds, cfg, 15)
		if len(r.Evals) != 3 {
			b.Fatal("bad ablation")
		}
	}
}

// BenchmarkAblationWindow sweeps the aggregation window size.
func BenchmarkAblationWindow(b *testing.B) {
	cfg := benchDatasetCfg()
	for i := 0; i < b.N; i++ {
		r := experiments.AblationWindow(cfg, 10, []sim.Time{sim.Second, 2 * sim.Second})
		if len(r.Evals) != 2 {
			b.Fatal("bad ablation")
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkSimEngine measures raw event throughput.
func BenchmarkSimEngine(b *testing.B) {
	eng := sim.NewEngine()
	var fn func()
	n := 0
	fn = func() {
		n++
		if n < b.N {
			eng.Schedule(1, fn)
		}
	}
	b.ResetTimer()
	eng.Schedule(1, fn)
	eng.Run()
}

// BenchmarkDiskService measures device-model service-time computation.
func BenchmarkDiskService(b *testing.B) {
	eng := sim.NewEngine()
	d := disk.New(eng, disk.Config{Seed: 1})
	rng := sim.NewRNG(2)
	b.ResetTimer()
	done := 0
	for i := 0; i < b.N; i++ {
		d.Submit(&disk.Request{
			Op: disk.Read, Sector: rng.Int63n(1 << 30), Sectors: 64,
			Done: func() { done++ },
		})
		eng.Run()
	}
	if done != b.N {
		b.Fatal("lost requests")
	}
}

// BenchmarkNetTransfer measures fair-share network recomputation with
// 8 concurrent flows.
func BenchmarkNetTransfer(b *testing.B) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	for _, n := range []string{"a", "b", "c", "d", "srv"} {
		net.AddNode(n, 0)
	}
	srcs := []string{"a", "b", "c", "d"}
	b.ResetTimer()
	done := 0
	for i := 0; i < b.N; i++ {
		net.Transfer(srcs[i%4], "srv", 1<<20, func() { done++ })
		if (i+1)%8 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	if done != b.N {
		b.Fatal("lost transfers")
	}
}

// BenchmarkLustreWrite measures the full client->OST write path.
func BenchmarkLustreWrite(b *testing.B) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	fs := lustre.New(eng, net, lustre.PaperTopology(), lustre.Config{})
	c := fs.Client("c0")
	var h *lustre.Handle
	c.Create("/bench", 1, func(hh *lustre.Handle) { h = hh })
	eng.Run()
	b.ResetTimer()
	done := 0
	for i := 0; i < b.N; i++ {
		c.Write(h, int64(i%256)<<20, 1<<20, func() { done++ })
		eng.Run()
	}
	if done != b.N {
		b.Fatal("lost writes")
	}
}

// BenchmarkScenarioRun measures one full measurement run.
func BenchmarkScenarioRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := quant.RunE(quant.Scenario{
			Target: quant.TargetSpec{
				Gen: io500.New(io500.IorEasyWrite, io500.Params{
					Dir: "/b", Ranks: 2, EasyFileBytes: 16 << 20}),
				Nodes: []string{"c0"},
				Ranks: 2,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Finished {
			b.Fatal("run truncated")
		}
	}
}

func benchScenario() quant.Scenario {
	return quant.Scenario{
		Target: quant.TargetSpec{
			Gen: io500.New(io500.IorEasyWrite, io500.Params{
				Dir: "/b", Ranks: 2, EasyFileBytes: 16 << 20}),
			Nodes: []string{"c0"},
			Ranks: 2,
		},
	}
}

// BenchmarkRun measures RunE on its default path — metrics always on (the
// private per-run sink), tracing off — and reports the simulator's own
// observability counters alongside ns/op, so a perf regression can be
// attributed to event volume vs per-event cost.
func BenchmarkRun(b *testing.B) {
	var events, reqs uint64
	for i := 0; i < b.N; i++ {
		res, err := quant.RunE(benchScenario())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Finished {
			b.Fatal("run truncated")
		}
		events += res.Stats.CounterTotal("engine", "events_executed")
		reqs += res.Stats.CounterTotal("disk", "requests")
	}
	b.ReportMetric(float64(events)/float64(b.N), "simevents/op")
	b.ReportMetric(float64(reqs)/float64(b.N), "diskreqs/op")
}

// BenchmarkRunProfiles measures the same default run under every named
// hardware profile — the per-backend cost of the HardwareProfile API. The
// paper sub-benchmark should match BenchmarkRun; nvme/fastnic/burstbuffer
// quantify how much simulated time (and host work) each backend shifts.
func BenchmarkRunProfiles(b *testing.B) {
	for _, name := range quant.ProfileNames() {
		p, err := quant.ProfileByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := benchScenario()
				s.Hardware = p
				res, err := quant.RunE(s)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Finished {
					b.Fatal("run truncated")
				}
			}
		})
	}
}

// BenchmarkRunTraced is the same run with span collection enabled, bounding
// the cost of -trace-events.
func BenchmarkRunTraced(b *testing.B) {
	var spans int
	for i := 0; i < b.N; i++ {
		sink := quant.NewSink()
		sink.EnableTrace(0)
		res, err := quant.RunE(benchScenario(), quant.WithSink(sink))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Finished {
			b.Fatal("run truncated")
		}
		spans += sink.TraceSpans()
	}
	b.ReportMetric(float64(spans)/float64(b.N), "spans/op")
}

// BenchmarkKernelModelTrainStep measures one epoch over 256 samples.
func BenchmarkKernelModelTrainStep(b *testing.B) {
	ds := syntheticDataset(256)
	m := ml.NewKernelModel(ml.KernelConfig{NTargets: 7, NFeat: 34, Classes: 2, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.Train(m, ds, ml.TrainConfig{Epochs: 1, Seed: int64(i)})
	}
}

// BenchmarkTrainEpoch measures one training epoch over 256 samples at each
// worker count. The serial case is the legacy non-sharded loop (Workers: 0);
// every Workers >= 1 case runs the sharded path and produces bit-identical
// weights, so the sweep isolates the cost/benefit of data parallelism alone.
func BenchmarkTrainEpoch(b *testing.B) {
	ds := syntheticDataset(256)
	for _, w := range []int{0, 1, 2, 4, 8} {
		name := "serial"
		if w > 0 {
			name = fmt.Sprintf("workers=%d", w)
		}
		b.Run(name, func(b *testing.B) {
			m := ml.NewKernelModel(ml.KernelConfig{NTargets: 7, NFeat: 34, Classes: 2, Seed: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ml.Train(m, ds, ml.TrainConfig{Epochs: 1, Seed: int64(i), Workers: w})
			}
		})
	}
}

// BenchmarkEngineStep measures one schedule+dispatch cycle through the event
// loop — the simulator's smallest unit of work, and the path the event
// free-list keeps allocation-free.
func BenchmarkEngineStep(b *testing.B) {
	eng := sim.NewEngine()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Schedule(1, fn)
		eng.Step()
	}
}

// BenchmarkKernelModelPredict measures single-window inference latency — the
// runtime cost of the online predictor.
func BenchmarkKernelModelPredict(b *testing.B) {
	ds := syntheticDataset(1)
	m := ml.NewKernelModel(ml.KernelConfig{NTargets: 7, NFeat: 34, Classes: 2, Seed: 1})
	vecs := ds.Samples[0].Vectors
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(vecs)
	}
}

// benchFramework assembles a serving framework directly (no training — the
// weights' values don't matter for timing) plus a 32-window batch.
func benchFramework() (*quant.Framework, []quant.WindowMatrix) {
	ds := syntheticDataset(32)
	fw := &quant.Framework{
		Bins:   label.BinaryBins(),
		Model:  ml.NewKernelModel(ml.KernelConfig{NTargets: 7, NFeat: 34, Classes: 2, Seed: 1}),
		Scaler: dataset.FitScaler(ds),
	}
	mats := make([]quant.WindowMatrix, ds.Len())
	for i := range mats {
		mats[i] = ds.Samples[i].Vectors
	}
	return fw, mats
}

// BenchmarkFrameworkPredict measures 32 windows classified one Predict call
// at a time — the pre-serving baseline an inference server would otherwise
// pay per batch.
func BenchmarkFrameworkPredict(b *testing.B) {
	fw, mats := benchFramework()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, mat := range mats {
			fw.Predict(mat)
		}
	}
}

// BenchmarkFrameworkPredictBatch measures the same 32 windows through one
// PredictBatch call — the serving hot path: amortized scratch, cache-free
// nn.Infer, zero steady-state allocations. Compare ns/op against
// BenchmarkFrameworkPredict for the batching speedup.
func BenchmarkFrameworkPredictBatch(b *testing.B) {
	fw, mats := benchFramework()
	fw.PredictBatch(mats) // warm the scratch so steady state is measured
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.PredictBatch(mats)
	}
}

// BenchmarkForecastPredict measures one full forecast — pooling a 4-window
// history of 7x34 matrices and running all three horizon heads — the
// per-window cost the online loop and /forecast endpoint pay. Steady state
// reuses the forecaster's pooled/scaled scratch; only the returned
// Prediction allocates.
func BenchmarkForecastPredict(b *testing.B) {
	const history, nTargets, nFeat = 4, 7, 34
	fc := &forecast.Forecaster{History: history, Threshold: 1, Bins: label.BinaryBins()}
	for _, k := range []int{1, 2, 4} {
		scaler := &dataset.Scaler{Mean: make([]float64, 2*nFeat), Std: make([]float64, 2*nFeat)}
		for j := range scaler.Std {
			scaler.Std[j] = 1
		}
		fc.Heads = append(fc.Heads, &forecast.Head{
			Horizon: k,
			Model: ml.NewKernelModel(ml.KernelConfig{
				NTargets: history, NFeat: 2 * nFeat, Classes: 2, Seed: 1 + int64(k),
			}),
			Scaler: scaler,
		})
	}
	ds := syntheticDataset(history)
	hist := make([]quant.WindowMatrix, history)
	for i := range hist {
		hist[i] = ds.Samples[i].Vectors
	}
	if _, err := fc.Predict(hist); err != nil { // warm the scratch
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fc.Predict(hist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDriftDetector measures the continuous-learning monitor's per-window
// cost: one ObserveWindow (streaming moment update over 7 targets × 34
// features) plus one full Score (per-feature z/effect/variance-ratio sweep) —
// the work internal/online pays on every live window.
func BenchmarkDriftDetector(b *testing.B) {
	ds := syntheticDataset(64)
	det := online.NewDetector(dataset.FitScaler(ds), 0.95, online.DriftConfig{})
	mats := make([]quant.WindowMatrix, ds.Len())
	for i := range mats {
		mats[i] = ds.Samples[i].Vectors
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.ObserveWindow(mats[i%len(mats)])
		if s := det.Score(); s.Windows == 0 {
			b.Fatal("no observations")
		}
	}
}

// BenchmarkWarmStartEpoch measures one incremental retraining epoch from an
// incumbent's weights (clone + scaler reuse + single epoch) against the cost
// of the same epoch from scratch — the marginal price of a continuous-learning
// retrain.
func BenchmarkWarmStartEpoch(b *testing.B) {
	ds := syntheticDataset(256)
	incumbent, _, err := quant.TrainFrameworkE(ds, quant.FrameworkConfig{
		Seed: 1, Train: ml.TrainConfig{Epochs: 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	cfg := quant.FrameworkConfig{Seed: 1, Train: ml.TrainConfig{Epochs: 1}}
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Train.Seed = int64(i + 1)
			if _, _, err := quant.TrainFrameworkE(ds, c, quant.WithWarmStart(incumbent)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := cfg
			c.Train.Seed = int64(i + 1)
			if _, _, err := quant.TrainFrameworkE(ds, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLabeler measures baseline matching over 10k records.
func BenchmarkLabeler(b *testing.B) {
	recs := syntheticRecords(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := label.New(recs, sim.Second, 3)
		if len(l.Degradations(recs)) == 0 {
			b.Fatal("no windows")
		}
	}
}

func syntheticDataset(n int) *dataset.Dataset {
	names := make([]string, 34)
	for i := range names {
		names[i] = "f"
	}
	ds := dataset.New(names, 7, 2)
	rng := sim.NewRNG(3)
	for i := 0; i < n; i++ {
		vecs := make([][]float64, 7)
		for t := range vecs {
			v := make([]float64, 34)
			for f := range v {
				v[f] = rng.NormFloat64()
			}
			vecs[t] = v
		}
		ds.Add(&dataset.Sample{Label: i % 2, Degradation: 1, Vectors: vecs})
	}
	return ds
}

func syntheticRecords(n int) []workload.Record {
	rng := sim.NewRNG(9)
	recs := make([]workload.Record, n)
	for i := range recs {
		start := sim.Time(i) * 3 * sim.Millisecond
		recs[i] = workload.Record{
			Rank: i % 4, Seq: i / 4,
			Op:    workload.Op{Kind: workload.Read, Size: 1 << 20},
			Start: start,
			End:   start + sim.Time(rng.Intn(10)+1)*sim.Millisecond,
		}
	}
	return recs
}

// BenchmarkPhaseStudy regenerates the §II-A multi-phase slowdown study.
func BenchmarkPhaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.PhaseStudy(experiments.PhaseStudyConfig{
			Scale: benchScale, Instances: 2,
		})
		if len(r.Phases) != 7 {
			b.Fatal("bad phases")
		}
	}
}

// BenchmarkCaseStudyMitigation runs the four-policy mitigation comparison.
func BenchmarkCaseStudyMitigation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.CaseStudyMitigation(experiments.CaseStudyConfig{
			Scale: benchScale, Epochs: 10, Seed: int64(i),
		})
		if len(r.Modes) != 4 {
			b.Fatal("bad modes")
		}
	}
}

// BenchmarkPolicyDecide measures one mitigation-policy decision per window —
// the per-window cost a live controller pays on the actuation hot path. The
// observation stream alternates clean/hot windows with a forecast attached,
// exercising the hysteresis state machine in both directions.
func BenchmarkPolicyDecide(b *testing.B) {
	obs := make([]mitigate.Observation, 8)
	for i := range obs {
		obs[i] = mitigate.Observation{Window: i, Class: (i + 1) % 2}
		if i%3 == 0 {
			obs[i].Forecast = &forecast.Prediction{
				Horizons: []int{1, 2}, Classes: []int{1, 0},
				Probs: [][]float64{{0.1, 0.9}, {0.6, 0.4}}, LeadWindows: 1,
			}
		}
	}
	mk := map[string]func() (mitigate.Policy, error){
		"reactive":  func() (mitigate.Policy, error) { return mitigate.NewReactiveThrottle() },
		"proactive": func() (mitigate.Policy, error) { return mitigate.NewProactiveThrottle() },
		"defer":     func() (mitigate.Policy, error) { return mitigate.NewDeferBurst() },
	}
	for _, name := range []string{"reactive", "proactive", "defer"} {
		p, err := mk[name]()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			engaged := 0
			for i := 0; i < b.N; i++ {
				if p.Decide(obs[i%len(obs)]).Engaged() {
					engaged++
				}
			}
			if engaged == 0 {
				b.Fatal("policy never engaged")
			}
		})
	}
}

// BenchmarkBurstBufferWrite measures the burst-buffer absorb path.
func BenchmarkBurstBufferWrite(b *testing.B) {
	eng := sim.NewEngine()
	net := netsim.New(eng, netsim.Config{})
	fs := lustre.New(eng, net, lustre.PaperTopology(), lustre.Config{})
	buf := bb.Attach(eng, fs.Client("c0"), bb.Config{Capacity: 1 << 30})
	var h *lustre.Handle
	fs.Client("c0").Create("/bench-bb", 1, func(hh *lustre.Handle) { h = hh })
	eng.Run()
	b.ResetTimer()
	done := 0
	for i := 0; i < b.N; i++ {
		buf.Write(h, int64(i%512)<<20, 1<<20, func() { done++ })
		eng.Run()
	}
	if done != b.N {
		b.Fatal("lost writes")
	}
}

// BenchmarkTraceRoundTrip measures DXT log encode+decode of 1k records.
func BenchmarkTraceRoundTrip(b *testing.B) {
	recs := syntheticRecords(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf strings.Builder
		w := trace.NewWriter(&buf)
		for _, rec := range recs {
			w.Write(rec)
		}
		if w.Flush() != nil {
			b.Fatal("write failed")
		}
		got, err := trace.Read(strings.NewReader(buf.String()))
		if err != nil || len(got) != 1000 {
			b.Fatal("read failed")
		}
	}
}
